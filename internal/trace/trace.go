// Package trace defines the on-disk job-trace formats of the simulator.
//
// The native format is a CSV dialect that carries the hybrid-workload
// extensions the paper needs (job class, malleable minimum size, advance
// notice category and times). A reader and writer for the Standard Workload
// Format (SWF) used by the Parallel Workloads Archive are also provided so
// that external rigid-job traces can seed experiments.
//
// # SWF import semantics
//
// SWF carries no hybrid extensions, so every SWF job imports as rigid —
// there is deliberately no knob to change that at parse time. Reassigning
// imported jobs to the on-demand or malleable classes is the job of the
// source layer's Relabel transform (the paper's §IV-A project-relabeling
// trick), which keeps the parser a faithful reader of what the file says.
// Beyond the class default, the importer fills gaps common in archive logs:
// a missing or too-small requested time becomes the actual runtime, a
// missing allocated-processor count falls back to the requested count, and
// a missing group ID yields project 0. Jobs with non-positive runtime or
// processor counts (failed or cancelled entries) are skipped, matching
// common SWF cleaning practice. Every one of these decisions is counted in
// an SWFSummary so callers can surface what the import did instead of
// guessing; use NewSWFReader + Summary (or ReadSWFSummary at the facade)
// to obtain it.
//
// Both formats have streaming readers (CSVReader, SWFReader) that parse one
// record per Next call, so multi-week traces can feed a simulation lazily
// without ever being resident in memory as a whole; ReadCSV and ReadSWF are
// slurp-all conveniences built on top of them.
package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/job"
)

// Record is one job in a trace. It mirrors the static half of job.Job.
type Record struct {
	ID         int
	Project    int
	Class      job.Class
	Submit     int64 // actual arrival time (seconds from trace start)
	Size       int   // requested nodes (maximum size for malleable jobs)
	MinSize    int   // minimum size (malleable; == Size otherwise)
	Work       int64 // actual runtime at Size, seconds
	Estimate   int64 // user runtime estimate, seconds
	Setup      int64 // startup overhead, seconds
	Notice     job.NoticeCategory
	NoticeTime int64 // advance-notice instant (== Submit when NoNotice)
	EstArrival int64 // arrival estimate carried by the notice
}

// Validate checks internal consistency of a record.
func (r Record) Validate() error {
	switch {
	case r.Size < 1:
		return fmt.Errorf("trace: job %d: size %d < 1", r.ID, r.Size)
	case r.MinSize < 1 || r.MinSize > r.Size:
		return fmt.Errorf("trace: job %d: min size %d outside [1,%d]", r.ID, r.MinSize, r.Size)
	case r.Work < 1:
		return fmt.Errorf("trace: job %d: work %d < 1", r.ID, r.Work)
	case r.Estimate < r.Work:
		return fmt.Errorf("trace: job %d: estimate %d < work %d", r.ID, r.Estimate, r.Work)
	case r.Submit < 0:
		return fmt.Errorf("trace: job %d: negative submit %d", r.ID, r.Submit)
	case r.Setup < 0:
		return fmt.Errorf("trace: job %d: negative setup %d", r.ID, r.Setup)
	case r.Class == job.OnDemand && r.NoticeTime > r.Submit:
		return fmt.Errorf("trace: job %d: notice %d after arrival %d", r.ID, r.NoticeTime, r.Submit)
	case r.Class != job.Malleable && r.MinSize != r.Size:
		return fmt.Errorf("trace: job %d: %v job with min size %d != size %d", r.ID, r.Class, r.MinSize, r.Size)
	}
	return nil
}

var csvHeader = []string{
	"id", "project", "class", "submit", "size", "min_size",
	"work", "estimate", "setup", "notice", "notice_time", "est_arrival",
}

// WriteCSV writes records in the native CSV dialect.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range records {
		row := []string{
			strconv.Itoa(r.ID),
			strconv.Itoa(r.Project),
			r.Class.String(),
			strconv.FormatInt(r.Submit, 10),
			strconv.Itoa(r.Size),
			strconv.Itoa(r.MinSize),
			strconv.FormatInt(r.Work, 10),
			strconv.FormatInt(r.Estimate, 10),
			strconv.FormatInt(r.Setup, 10),
			r.Notice.String(),
			strconv.FormatInt(r.NoticeTime, 10),
			strconv.FormatInt(r.EstArrival, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVReader parses the native CSV dialect one record at a time, validating
// each record as it is read. The header row is checked on the first Next.
// Errors are sticky: after any failure (including io.EOF at the end of the
// trace) every subsequent Next returns the same error.
type CSVReader struct {
	cr     *csv.Reader
	row    int // rows consumed so far (1 = header), for error positions
	err    error
	header bool
}

// NewCSVReader returns a streaming reader over the native CSV dialect.
// Gzip-compressed input is decompressed transparently (see MaybeGzip).
func NewCSVReader(r io.Reader) *CSVReader {
	cr := csv.NewReader(MaybeGzip(r))
	cr.FieldsPerRecord = len(csvHeader)
	return &CSVReader{cr: cr}
}

// Row returns the number of CSV rows consumed so far, counting the header as
// row 1 — i.e. the row the most recent record (or error) came from. Callers
// layering their own checks on top of the reader (duplicate IDs, cross-record
// invariants) use it to position their diagnostics.
func (r *CSVReader) Row() int { return r.row }

// Next returns the next record of the trace. It returns io.EOF after the
// last record and any other error exactly once (then sticks to it).
func (r *CSVReader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	fail := func(err error) (Record, error) {
		r.err = err
		return Record{}, err
	}
	if !r.header {
		row, err := r.cr.Read()
		if err == io.EOF {
			return fail(fmt.Errorf("trace: empty file"))
		}
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		for i, name := range csvHeader {
			if row[i] != name {
				return fail(fmt.Errorf("trace: bad header column %d: %q", i, row[i]))
			}
		}
		r.header = true
		r.row = 1
	}
	row, err := r.cr.Read()
	if err == io.EOF {
		return fail(io.EOF)
	}
	if err != nil {
		return fail(fmt.Errorf("trace: %w", err))
	}
	r.row++
	rec, err := parseCSVRow(row)
	if err != nil {
		return fail(fmt.Errorf("trace: row %d: %w", r.row, err))
	}
	if err := rec.Validate(); err != nil {
		// Validate speaks in job IDs; the reader adds where in the file the
		// offending record sits (its own "trace: " prefix is dropped so the
		// message carries one prefix, not two).
		return fail(fmt.Errorf("trace: row %d: %s", r.row,
			strings.TrimPrefix(err.Error(), "trace: ")))
	}
	return rec, nil
}

// ReadCSV parses the native CSV dialect and validates every record. It is
// the slurp-all form of CSVReader.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := NewCSVReader(r)
	records := make([]Record, 0, 64)
	for {
		rec, err := cr.Next()
		if err == io.EOF {
			return records, nil
		}
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
}

func parseCSVRow(row []string) (Record, error) {
	var r Record
	var err error
	geti := func(s string) int {
		if err != nil {
			return 0
		}
		var v int
		v, err = strconv.Atoi(s)
		return v
	}
	get64 := func(s string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = strconv.ParseInt(s, 10, 64)
		return v
	}
	r.ID = geti(row[0])
	r.Project = geti(row[1])
	switch row[2] {
	case "rigid":
		r.Class = job.Rigid
	case "on-demand":
		r.Class = job.OnDemand
	case "malleable":
		r.Class = job.Malleable
	default:
		return r, fmt.Errorf("unknown class %q", row[2])
	}
	r.Submit = get64(row[3])
	r.Size = geti(row[4])
	r.MinSize = geti(row[5])
	r.Work = get64(row[6])
	r.Estimate = get64(row[7])
	r.Setup = get64(row[8])
	switch row[9] {
	case "no-notice":
		r.Notice = job.NoNotice
	case "accurate":
		r.Notice = job.AccurateNotice
	case "early":
		r.Notice = job.ArriveEarly
	case "late":
		r.Notice = job.ArriveLate
	default:
		return r, fmt.Errorf("unknown notice category %q", row[9])
	}
	r.NoticeTime = get64(row[10])
	r.EstArrival = get64(row[11])
	return r, err
}

// SWFSummary reports what an SWF import did: how many jobs were produced,
// how many were skipped as unrunnable, and how often missing or inconsistent
// fields were filled with defaults. It makes the importer's silent decisions
// (above all: every job becomes rigid) visible to callers.
type SWFSummary struct {
	// JobsRead is the number of records produced.
	JobsRead int
	// JobsSkipped counts lines dropped for non-positive runtime or
	// processor count, or a negative submit time (failed/cancelled entries).
	JobsSkipped int
	// EstimatesDefaulted counts records whose requested time was missing or
	// below the actual runtime and was raised to the runtime.
	EstimatesDefaulted int
	// SizeFallbacks counts records whose allocated-processor field was
	// non-positive and whose requested-processor field was used instead.
	SizeFallbacks int
	// ProjectsDefaulted counts records with no group-ID field (project 0).
	ProjectsDefaulted int
}

// String renders the summary as one human-readable line.
func (s SWFSummary) String() string {
	return fmt.Sprintf("%d jobs read (all rigid), %d skipped; defaults: %d estimates, %d sizes, %d projects",
		s.JobsRead, s.JobsSkipped, s.EstimatesDefaulted, s.SizeFallbacks, s.ProjectsDefaulted)
}

// SWFReader parses a Standard Workload Format trace one job at a time.
// Comment lines (;) are skipped, jobs with non-positive runtime or processor
// counts are dropped, and every job imports as rigid (see the package
// documentation for the full import semantics). Errors are sticky, matching
// CSVReader. Summary may be consulted at any point and is complete once Next
// has returned io.EOF.
type SWFReader struct {
	sc   *bufio.Scanner
	line int
	sum  SWFSummary
	err  error
}

// NewSWFReader returns a streaming reader over an SWF trace.
// Gzip-compressed input is decompressed transparently (see MaybeGzip).
func NewSWFReader(r io.Reader) *SWFReader {
	sc := bufio.NewScanner(MaybeGzip(r))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &SWFReader{sc: sc}
}

// Line returns the number of input lines consumed so far — the line the most
// recent record (or error) came from, for callers positioning diagnostics of
// their own (see CSVReader.Row).
func (r *SWFReader) Line() int { return r.line }

// Summary returns the import counters accumulated so far.
func (r *SWFReader) Summary() SWFSummary { return r.sum }

// Next returns the next imported job, io.EOF at the end of the trace, or a
// parse error (all sticky).
func (r *SWFReader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	fail := func(err error) (Record, error) {
		r.err = err
		return Record{}, err
	}
	for r.sc.Scan() {
		r.line++
		text := strings.TrimSpace(r.sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		f := strings.Fields(text)
		if len(f) < 11 {
			return fail(fmt.Errorf("trace: swf line %d: %d fields, want >= 11", r.line, len(f)))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return fail(fmt.Errorf("trace: swf line %d: %w", r.line, err))
		}
		submit, _ := strconv.ParseInt(f[1], 10, 64)
		runtime, _ := strconv.ParseInt(f[3], 10, 64)
		procs, _ := strconv.Atoi(f[4])
		sizeFellBack := false
		if procs <= 0 && len(f) > 7 {
			procs, _ = strconv.Atoi(f[7]) // fall back to requested processors
			sizeFellBack = procs > 0
		}
		var estimate int64
		if len(f) > 8 {
			estimate, _ = strconv.ParseInt(f[8], 10, 64)
		}
		estimateDefaulted := estimate < runtime
		if estimateDefaulted {
			estimate = runtime
		}
		project := 0
		projectDefaulted := len(f) <= 12
		if !projectDefaulted {
			project, _ = strconv.Atoi(f[12])
		}
		if runtime <= 0 || procs <= 0 || submit < 0 {
			r.sum.JobsSkipped++
			continue
		}
		r.sum.JobsRead++
		if estimateDefaulted {
			r.sum.EstimatesDefaulted++
		}
		if sizeFellBack {
			r.sum.SizeFallbacks++
		}
		if projectDefaulted {
			r.sum.ProjectsDefaulted++
		}
		return Record{
			ID:         id,
			Project:    project,
			Class:      job.Rigid,
			Submit:     submit,
			Size:       procs,
			MinSize:    procs,
			Work:       runtime,
			Estimate:   estimate,
			NoticeTime: submit,
			EstArrival: submit,
		}, nil
	}
	if err := r.sc.Err(); err != nil {
		return fail(fmt.Errorf("trace: %w", err))
	}
	return fail(io.EOF)
}

// ReadSWF parses a Standard Workload Format trace; it is the slurp-all form
// of SWFReader (see the package documentation for the import semantics).
func ReadSWF(r io.Reader) ([]Record, error) {
	records, _, err := ReadSWFSummary(r)
	return records, err
}

// ReadSWFSummary parses an SWF trace and additionally returns the import
// summary, so callers can report what was defaulted and what was dropped.
func ReadSWFSummary(r io.Reader) ([]Record, SWFSummary, error) {
	sr := NewSWFReader(r)
	var records []Record
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return records, sr.Summary(), nil
		}
		if err != nil {
			return nil, sr.Summary(), err
		}
		records = append(records, rec)
	}
}

// WriteSWF writes records as SWF. Hybrid extensions are lossy: class,
// minimum size and notice information are dropped (a header comment notes
// the original class mix).
func WriteSWF(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; SWF export from hybridsched (class/notice extensions dropped)")
	for _, r := range records {
		// id submit wait run procs avgcpu mem reqprocs reqtime reqmem status
		// uid gid exe queue partition prevjob thinktime
		_, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d %d -1 -1 -1 -1 -1\n",
			r.ID, r.Submit, r.Work, r.Size, r.Size, r.Estimate, r.Project, r.Project)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Materialize converts records into simulator jobs, attaching the checkpoint
// plan returned by plan for each rigid job's size. Records are not modified.
func Materialize(records []Record, plan func(size int) checkpoint.Plan) []*job.Job {
	jobs := make([]*job.Job, 0, len(records))
	for _, r := range records {
		var j *job.Job
		switch r.Class {
		case job.Rigid:
			j = job.NewRigid(r.ID, r.Project, r.Submit, r.Size, r.Work, r.Estimate, r.Setup, plan(r.Size))
		case job.OnDemand:
			j = job.NewOnDemand(r.ID, r.Project, r.Submit, r.Size, r.Work, r.Estimate, r.Setup,
				r.Notice, r.NoticeTime, r.EstArrival)
		case job.Malleable:
			j = job.NewMalleable(r.ID, r.Project, r.Submit, r.Size, r.MinSize, r.Work, r.Estimate, r.Setup)
		}
		jobs = append(jobs, j)
	}
	return jobs
}
