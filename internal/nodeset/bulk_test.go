package nodeset

import (
	"math/rand"
	"testing"
)

// naivePick is the pre-bulk per-bit reference semantics of Pick.
func naivePick(s *Set, k int) *Set {
	taken := &Set{}
	for k > 0 && !s.Empty() {
		id, _ := s.NextSet(0)
		s.Remove(id)
		taken.Add(id)
		k--
	}
	return taken
}

// TestPickMatchesNaive pins the word-level Pick to the per-bit reference over
// randomized populations, including whole-word and boundary-word cases.
func TestPickMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3000)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) != 0 {
				a.Add(i)
				b.Add(i)
			}
		}
		k := rng.Intn(n + 10)
		got := a.Pick(k)
		want := naivePick(b, k)
		if !got.Equal(want) {
			t.Fatalf("trial %d: Pick(%d) = %s, want %s", trial, k, got, want)
		}
		if !a.Equal(b) {
			t.Fatalf("trial %d: remainder diverges: %s vs %s", trial, a, b)
		}
		if got.Len()+a.Len() != b.Len()+want.Len() {
			t.Fatalf("trial %d: cardinality leak", trial)
		}
	}
}

// TestPickWholeUniverse picks everything from a large contiguous set — the
// allocation pattern of cluster construction at 100k nodes.
func TestPickWholeUniverse(t *testing.T) {
	s := Range(0, 131072)
	taken := s.Pick(131072)
	if taken.Len() != 131072 || !s.Empty() {
		t.Fatalf("Pick(all): took %d, left %d", taken.Len(), s.Len())
	}
	if id, ok := taken.NextSet(0); !ok || id != 0 {
		t.Fatalf("NextSet(0) = %d,%v", id, ok)
	}
	if id, ok := taken.NextSet(131071); !ok || id != 131071 {
		t.Fatalf("NextSet(last) = %d,%v", id, ok)
	}
	if _, ok := taken.NextSet(131072); ok {
		t.Fatal("NextSet past the end should report false")
	}
}

// TestAddRangeMatchesAdds pins AddRange to per-bit insertion across word
// boundaries and overlaps.
func TestAddRangeMatchesAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, b := &Set{}, &Set{}
		for r := 0; r < 3; r++ {
			lo := rng.Intn(500)
			hi := lo + rng.Intn(300)
			a.AddRange(lo, hi)
			for i := lo; i < hi; i++ {
				b.Add(i)
			}
		}
		if !a.Equal(b) || a.Len() != b.Len() {
			t.Fatalf("trial %d: AddRange diverges: %s vs %s", trial, a, b)
		}
	}
	empty := &Set{}
	empty.AddRange(5, 5)
	empty.AddRange(9, 3)
	if !empty.Empty() {
		t.Fatal("empty ranges must add nothing")
	}
}

// TestNextSet exercises the word-skipping iteration.
func TestNextSet(t *testing.T) {
	s := FromIDs(3, 64, 65, 200, 4095)
	var got []int
	for id, ok := s.NextSet(0); ok; id, ok = s.NextSet(id + 1) {
		got = append(got, id)
	}
	want := []int{3, 64, 65, 200, 4095}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if id, ok := s.NextSet(-5); !ok || id != 3 {
		t.Fatalf("NextSet(-5) = %d,%v", id, ok)
	}
}
