// Package nodeset provides a compact bitset of compute-node IDs.
//
// Node sets are the allocation currency of the cluster: every allocation,
// reservation, and loan is an explicit set of node IDs rather than a bare
// count. Carrying identity is what lets the mechanisms implement the paper's
// "return leased nodes to the lender" semantics exactly — an on-demand job
// returns the very nodes it borrowed from each preempted or shrunk job.
package nodeset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bitset over non-negative node IDs. The zero value is an empty set.
// Sets are mutable; use Clone before sharing.
type Set struct {
	words []uint64
	count int
}

// New returns an empty set with capacity hint n nodes.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Range returns the set {lo, lo+1, ..., hi-1}.
func Range(lo, hi int) *Set {
	s := New(hi)
	for i := lo; i < hi; i++ {
		s.Add(i)
	}
	return s
}

// FromIDs returns a set containing exactly ids.
func FromIDs(ids ...int) *Set {
	s := &Set{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts id. Adding an existing member is a no-op. It panics on a
// negative id.
func (s *Set) Add(id int) {
	if id < 0 {
		panic("nodeset: negative node id")
	}
	w, b := id/wordBits, uint(id%wordBits)
	s.grow(w)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

// Remove deletes id. Removing a non-member is a no-op.
func (s *Set) Remove(id int) {
	if id < 0 {
		return
	}
	w, b := id/wordBits, uint(id%wordBits)
	if w >= len(s.words) {
		return
	}
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.count--
	}
}

// Contains reports whether id is a member.
func (s *Set) Contains(id int) bool {
	if id < 0 {
		return false
	}
	w, b := id/wordBits, uint(id%wordBits)
	return w < len(s.words) && s.words[w]&(1<<b) != 0
}

// Len returns the cardinality in O(1).
func (s *Set) Len() int { return s.count }

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return s.count == 0 }

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), count: s.count}
	copy(c.words, s.words)
	return c
}

// UnionWith adds all members of o to s.
func (s *Set) UnionWith(o *Set) {
	s.grow(len(o.words) - 1)
	for i, w := range o.words {
		added := w &^ s.words[i]
		s.words[i] |= w
		s.count += bits.OnesCount64(added)
	}
}

// SubtractWith removes all members of o from s.
func (s *Set) SubtractWith(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		removed := s.words[i] & o.words[i]
		s.words[i] &^= o.words[i]
		s.count -= bits.OnesCount64(removed)
	}
}

// IntersectWith keeps only members present in both sets.
func (s *Set) IntersectWith(o *Set) {
	for i := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		removed := s.words[i] &^ ow
		s.words[i] &= ow
		s.count -= bits.OnesCount64(removed)
	}
}

// Union returns a new set s ∪ o.
func Union(s, o *Set) *Set {
	c := s.Clone()
	c.UnionWith(o)
	return c
}

// Difference returns a new set s \ o.
func Difference(s, o *Set) *Set {
	c := s.Clone()
	c.SubtractWith(o)
	return c
}

// Intersection returns a new set s ∩ o.
func Intersection(s, o *Set) *Set {
	c := s.Clone()
	c.IntersectWith(o)
	return c
}

// Intersects reports whether s and o share any member, without allocating.
func (s *Set) Intersects(o *Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o contain the same members.
func (s *Set) Equal(o *Set) bool {
	if s.count != o.count {
		return false
	}
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var sw, ow uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(o.words) {
			ow = o.words[i]
		}
		if sw != ow {
			return false
		}
	}
	return true
}

// Pick removes up to k members (the lowest-numbered ones, for determinism)
// and returns them as a new set. If the set has fewer than k members, all of
// them are taken.
func (s *Set) Pick(k int) *Set {
	taken := &Set{}
	if k <= 0 {
		return taken
	}
	for wi := 0; wi < len(s.words) && k > 0; wi++ {
		w := s.words[wi]
		for w != 0 && k > 0 {
			b := bits.TrailingZeros64(w)
			id := wi*wordBits + b
			taken.Add(id)
			w &^= 1 << uint(b)
			s.words[wi] &^= 1 << uint(b)
			s.count--
			k--
		}
	}
	return taken
}

// IDs returns the members in ascending order.
func (s *Set) IDs() []int {
	out := make([]int, 0, s.count)
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// ForEach calls fn for every member in ascending order. Iteration stops if
// fn returns false.
func (s *Set) ForEach(fn func(id int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// String renders the set as compact ranges, e.g. "{0-3,7,9-10}".
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	ids := s.IDs()
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&sb, "%d-%d", ids[i], ids[j])
		} else {
			fmt.Fprintf(&sb, "%d", ids[i])
		}
		i = j + 1
	}
	sb.WriteByte('}')
	return sb.String()
}
