// Package nodeset provides a compact bitset of compute-node IDs.
//
// Node sets are the allocation currency of the cluster: every allocation,
// reservation, and loan is an explicit set of node IDs rather than a bare
// count. Carrying identity is what lets the mechanisms implement the paper's
// "return leased nodes to the lender" semantics exactly — an on-demand job
// returns the very nodes it borrowed from each preempted or shrunk job.
package nodeset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bitset over non-negative node IDs. The zero value is an empty set.
// Sets are mutable; use Clone before sharing.
type Set struct {
	words []uint64
	//schedlint:snapfield popcount cache; recomputed from words at decode
	count int
}

// New returns an empty set with capacity hint n nodes.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Range returns the set {lo, lo+1, ..., hi-1}.
func Range(lo, hi int) *Set {
	s := New(hi)
	s.AddRange(lo, hi)
	return s
}

// AddRange inserts every id in [lo, hi), filling whole words at a time so
// building a 100k-node universe costs ~hi/64 word writes, not hi bit inserts.
// It panics on a negative lo.
func (s *Set) AddRange(lo, hi int) {
	if hi <= lo {
		return
	}
	if lo < 0 {
		panic("nodeset: negative node id")
	}
	s.grow((hi - 1) / wordBits)
	for w := lo / wordBits; w*wordBits < hi; w++ {
		mask := ^uint64(0)
		if base := w * wordBits; base < lo {
			mask &= ^uint64(0) << uint(lo-base)
		}
		if end := (w + 1) * wordBits; end > hi {
			mask &= ^uint64(0) >> uint(end-hi)
		}
		added := mask &^ s.words[w]
		s.words[w] |= mask
		s.count += bits.OnesCount64(added)
	}
}

// FromIDs returns a set containing exactly ids.
func FromIDs(ids ...int) *Set {
	s := &Set{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts id. Adding an existing member is a no-op. It panics on a
// negative id.
func (s *Set) Add(id int) {
	if id < 0 {
		panic("nodeset: negative node id")
	}
	w, b := id/wordBits, uint(id%wordBits)
	s.grow(w)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

// Remove deletes id. Removing a non-member is a no-op.
func (s *Set) Remove(id int) {
	if id < 0 {
		return
	}
	w, b := id/wordBits, uint(id%wordBits)
	if w >= len(s.words) {
		return
	}
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.count--
	}
}

// Contains reports whether id is a member.
func (s *Set) Contains(id int) bool {
	if id < 0 {
		return false
	}
	w, b := id/wordBits, uint(id%wordBits)
	return w < len(s.words) && s.words[w]&(1<<b) != 0
}

// Len returns the cardinality in O(1).
func (s *Set) Len() int { return s.count }

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return s.count == 0 }

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), count: s.count}
	copy(c.words, s.words)
	return c
}

// UnionWith adds all members of o to s.
func (s *Set) UnionWith(o *Set) {
	s.grow(len(o.words) - 1)
	for i, w := range o.words {
		added := w &^ s.words[i]
		s.words[i] |= w
		s.count += bits.OnesCount64(added)
	}
}

// SubtractWith removes all members of o from s.
func (s *Set) SubtractWith(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		removed := s.words[i] & o.words[i]
		s.words[i] &^= o.words[i]
		s.count -= bits.OnesCount64(removed)
	}
}

// IntersectWith keeps only members present in both sets.
func (s *Set) IntersectWith(o *Set) {
	for i := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		removed := s.words[i] &^ ow
		s.words[i] &= ow
		s.count -= bits.OnesCount64(removed)
	}
}

// Union returns a new set s ∪ o.
func Union(s, o *Set) *Set {
	c := s.Clone()
	c.UnionWith(o)
	return c
}

// Difference returns a new set s \ o.
func Difference(s, o *Set) *Set {
	c := s.Clone()
	c.SubtractWith(o)
	return c
}

// Intersection returns a new set s ∩ o.
func Intersection(s, o *Set) *Set {
	c := s.Clone()
	c.IntersectWith(o)
	return c
}

// Intersects reports whether s and o share any member, without allocating.
func (s *Set) Intersects(o *Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o contain the same members.
func (s *Set) Equal(o *Set) bool {
	if s.count != o.count {
		return false
	}
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var sw, ow uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(o.words) {
			ow = o.words[i]
		}
		if sw != ow {
			return false
		}
	}
	return true
}

// Pick removes up to k members (the lowest-numbered ones, for determinism)
// and returns them as a new set. If the set has fewer than k members, all of
// them are taken. Whole words move in one mask operation — allocating
// thousands of nodes from a 100k-bit free pool costs a few word transfers,
// not one bit insert per node — and the result's word slice is preallocated
// to the source's length, so the transfer itself never reallocates.
func (s *Set) Pick(k int) *Set {
	taken := &Set{}
	if k <= 0 || s.count == 0 {
		return taken
	}
	if k > s.count {
		k = s.count
	}
	taken.words = make([]uint64, len(s.words))
	for wi := 0; wi < len(s.words) && k > 0; wi++ {
		w := s.words[wi]
		if w == 0 {
			continue
		}
		if c := bits.OnesCount64(w); c <= k {
			// The whole word fits: move it verbatim.
			taken.words[wi] = w
			s.words[wi] = 0
			taken.count += c
			s.count -= c
			k -= c
			continue
		}
		// Boundary word: keep only the lowest k set bits. Clearing the
		// lowest set bit k times leaves the high remainder; the difference
		// is exactly the k bits to take.
		rest := w
		for i := 0; i < k; i++ {
			rest &= rest - 1
		}
		take := w &^ rest
		taken.words[wi] = take
		s.words[wi] = rest
		taken.count += k
		s.count -= k
		k = 0
	}
	return taken
}

// NextSet returns the smallest member >= from, scanning a word at a time
// (the NextFree-style iteration of classic bitset allocators). ok is false
// when no such member exists. A negative from is treated as zero.
func (s *Set) NextSet(from int) (id int, ok bool) {
	if from < 0 {
		from = 0
	}
	wi := from / wordBits
	if wi >= len(s.words) {
		return 0, false
	}
	if w := s.words[wi] >> uint(from%wordBits); w != 0 {
		return from + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(s.words); wi++ {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// IDs returns the members in ascending order.
func (s *Set) IDs() []int {
	out := make([]int, 0, s.count)
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// ForEach calls fn for every member in ascending order. Iteration stops if
// fn returns false.
func (s *Set) ForEach(fn func(id int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// String renders the set as compact ranges, e.g. "{0-3,7,9-10}".
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	ids := s.IDs()
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&sb, "%d-%d", ids[i], ids[j])
		} else {
			fmt.Fprintf(&sb, "%d", ids[i])
		}
		i = j + 1
	}
	sb.WriteByte('}')
	return sb.String()
}
