package nodeset

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// Property-based tests: every algebraic law a Set must obey is checked
// against a map[int]bool model over randomized ID slices. IDs are drawn as
// uint16 so the bitsets stay a bounded few KiB while still spanning many
// words and forcing grow-on-Add paths.

// fromIDs16 builds a set and its model from a random ID slice (duplicates
// welcome — re-adding must be a no-op).
func fromIDs16(ids []uint16) (*Set, map[int]bool) {
	s := &Set{}
	model := make(map[int]bool, len(ids))
	for _, id := range ids {
		s.Add(int(id))
		model[int(id)] = true
	}
	return s, model
}

// agrees reports whether s contains exactly the model's members, with a
// consistent count.
func agrees(s *Set, model map[int]bool) bool {
	if s.Len() != len(model) {
		return false
	}
	for id := range model {
		if !s.Contains(id) {
			return false
		}
	}
	for _, id := range s.IDs() {
		if !model[id] {
			return false
		}
	}
	return true
}

func quickCheck(t *testing.T, name string, f any) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestQuickAddRemoveModel(t *testing.T) {
	quickCheck(t, "add/remove vs model", func(add, remove []uint16) bool {
		s, model := fromIDs16(add)
		for _, id := range remove {
			s.Remove(int(id))
			delete(model, int(id))
		}
		return agrees(s, model)
	})
}

func TestQuickUnionSemantics(t *testing.T) {
	quickCheck(t, "union", func(a, b []uint16) bool {
		sa, ma := fromIDs16(a)
		sb, mb := fromIDs16(b)
		u := Union(sa, sb)
		mu := make(map[int]bool, len(ma)+len(mb))
		for id := range ma {
			mu[id] = true
		}
		for id := range mb {
			mu[id] = true
		}
		// The operands must come through untouched (Union clones).
		return agrees(u, mu) && agrees(sa, ma) && agrees(sb, mb)
	})
}

func TestQuickIntersectSubtractSemantics(t *testing.T) {
	quickCheck(t, "intersect/subtract", func(a, b []uint16) bool {
		sa, ma := fromIDs16(a)
		sb, mb := fromIDs16(b)
		inter := Intersection(sa, sb)
		diff := Difference(sa, sb)
		mi := make(map[int]bool)
		md := make(map[int]bool)
		for id := range ma {
			if mb[id] {
				mi[id] = true
			} else {
				md[id] = true
			}
		}
		if !agrees(inter, mi) || !agrees(diff, md) {
			return false
		}
		// Partition law: (a ∩ b) ∪ (a \ b) == a, and the two parts are
		// disjoint.
		if inter.Intersects(diff) {
			return false
		}
		return Union(inter, diff).Equal(sa)
	})
}

func TestQuickSubtractUnionRoundTrip(t *testing.T) {
	quickCheck(t, "subtract/union round-trip", func(a, b []uint16) bool {
		sa, _ := fromIDs16(a)
		sb, _ := fromIDs16(b)
		// (a ∪ b) \ b == a \ b, and re-adding b restores a ∪ b.
		u := Union(sa, sb)
		stripped := Difference(u, sb)
		if !stripped.Equal(Difference(sa, sb)) {
			return false
		}
		stripped.UnionWith(sb)
		return stripped.Equal(u)
	})
}

func TestQuickCloneIsDeep(t *testing.T) {
	quickCheck(t, "clone deep-copies", func(a, mutate []uint16) bool {
		s, model := fromIDs16(a)
		c := s.Clone()
		if !c.Equal(s) {
			return false
		}
		// Mutating the original must not leak into the clone, and vice versa.
		for i, id := range mutate {
			if i%2 == 0 {
				s.Add(int(id))
			} else {
				s.Remove(int(id))
			}
		}
		return agrees(c, model)
	})
}

func TestQuickCountConsistency(t *testing.T) {
	quickCheck(t, "count consistency", func(a, b []uint16, k uint8) bool {
		s, _ := fromIDs16(a)
		o, _ := fromIDs16(b)
		s.UnionWith(o)
		s.SubtractWith(o)
		s.IntersectWith(s.Clone())
		snapshot := s.Clone()
		picked := s.Pick(int(k))
		// Len must equal both the popcount of the words and len(IDs()) after
		// any operation mix, and Pick must partition the set exactly.
		pop := 0
		for _, w := range s.words {
			pop += bits.OnesCount64(w)
		}
		if s.Len() != pop || s.Len() != len(s.IDs()) {
			return false
		}
		if picked.Len() != min(int(k), snapshot.Len()) {
			return false
		}
		if picked.Intersects(s) {
			return false
		}
		if !Union(picked, s).Equal(snapshot) {
			return false
		}
		if s.Empty() != (s.Len() == 0) {
			return false
		}
		return true
	})
}

func TestGrowOnAdd(t *testing.T) {
	cases := []struct {
		name string
		s    *Set
	}{
		{"zero value", &Set{}},
		{"New(0)", New(0)},
		{"New(4)", New(4)},
		{"Range(0,3)", Range(0, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := tc.s.Len()
			tc.s.Add(1000) // far beyond any initial capacity
			if len(tc.s.words) < 1000/wordBits+1 {
				t.Fatalf("words did not grow: %d", len(tc.s.words))
			}
			if !tc.s.Contains(1000) || tc.s.Len() != before+1 {
				t.Fatalf("Add(1000) not reflected: len %d", tc.s.Len())
			}
			tc.s.Add(1000) // re-add: count must not move
			if tc.s.Len() != before+1 {
				t.Fatalf("duplicate Add changed count to %d", tc.s.Len())
			}
			tc.s.Remove(5000) // beyond capacity: no-op, no growth panic
			if tc.s.Len() != before+1 {
				t.Fatalf("out-of-range Remove changed count to %d", tc.s.Len())
			}
		})
	}
}
