package nodeset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveContains(t *testing.T) {
	s := New(128)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(127)
	for _, id := range []int{0, 63, 64, 127} {
		if !s.Contains(id) {
			t.Fatalf("missing %d", id)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	s.Add(63) // duplicate add
	if s.Len() != 4 {
		t.Fatal("duplicate add changed cardinality")
	}
	s.Remove(63)
	if s.Contains(63) || s.Len() != 3 {
		t.Fatal("remove failed")
	}
	s.Remove(63) // duplicate remove
	if s.Len() != 3 {
		t.Fatal("duplicate remove changed cardinality")
	}
	s.Remove(10_000) // out of range
	s.Remove(-1)
	if s.Len() != 3 {
		t.Fatal("out-of-range remove changed cardinality")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(8).Add(-1)
}

func TestGrowBeyondHint(t *testing.T) {
	s := New(8)
	s.Add(1000)
	if !s.Contains(1000) || s.Len() != 1 {
		t.Fatal("set should grow past its capacity hint")
	}
}

func TestRangeAndFromIDs(t *testing.T) {
	r := Range(5, 10)
	if r.Len() != 5 {
		t.Fatalf("Range len = %d", r.Len())
	}
	for i := 5; i < 10; i++ {
		if !r.Contains(i) {
			t.Fatalf("Range missing %d", i)
		}
	}
	f := FromIDs(1, 3, 5)
	if f.Len() != 3 || !f.Contains(3) || f.Contains(2) {
		t.Fatal("FromIDs wrong members")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIDs(1, 2, 3, 64, 65)
	b := FromIDs(3, 4, 64, 200)

	u := Union(a, b)
	if u.Len() != 7 {
		t.Fatalf("union len = %d, want 7", u.Len())
	}
	d := Difference(a, b)
	if d.Len() != 3 || !d.Contains(1) || !d.Contains(2) || !d.Contains(65) {
		t.Fatalf("difference wrong: %v", d)
	}
	i := Intersection(a, b)
	if i.Len() != 2 || !i.Contains(3) || !i.Contains(64) {
		t.Fatalf("intersection wrong: %v", i)
	}
	// Operands must be untouched.
	if a.Len() != 5 || b.Len() != 4 {
		t.Fatal("algebra mutated operands")
	}
}

func TestIntersects(t *testing.T) {
	a := FromIDs(1, 100)
	b := FromIDs(2, 100)
	c := FromIDs(3)
	if !a.Intersects(b) {
		t.Fatal("a and b share 100")
	}
	if a.Intersects(c) {
		t.Fatal("a and c are disjoint")
	}
	if a.Intersects(&Set{}) {
		t.Fatal("nothing intersects the empty set")
	}
}

func TestEqual(t *testing.T) {
	a := FromIDs(1, 2, 3)
	b := FromIDs(3, 2, 1)
	if !a.Equal(b) {
		t.Fatal("order must not matter")
	}
	b.Add(512) // different word lengths
	if a.Equal(b) {
		t.Fatal("sets differ")
	}
	b.Remove(512)
	if !a.Equal(b) {
		t.Fatal("sets equal again even with different word capacity")
	}
}

func TestPick(t *testing.T) {
	s := Range(0, 100)
	got := s.Pick(30)
	if got.Len() != 30 {
		t.Fatalf("picked %d, want 30", got.Len())
	}
	if s.Len() != 70 {
		t.Fatalf("remaining %d, want 70", s.Len())
	}
	if got.Intersects(s) {
		t.Fatal("picked nodes must leave the source set")
	}
	// Deterministic: lowest IDs first.
	for i := 0; i < 30; i++ {
		if !got.Contains(i) {
			t.Fatalf("Pick should take lowest IDs, missing %d", i)
		}
	}
}

func TestPickMoreThanAvailable(t *testing.T) {
	s := Range(0, 5)
	got := s.Pick(10)
	if got.Len() != 5 || !s.Empty() {
		t.Fatal("Pick should drain the set when k exceeds cardinality")
	}
}

func TestPickZeroOrNegative(t *testing.T) {
	s := Range(0, 5)
	if !s.Pick(0).Empty() || !s.Pick(-3).Empty() {
		t.Fatal("Pick(<=0) should return empty")
	}
	if s.Len() != 5 {
		t.Fatal("Pick(<=0) should not mutate")
	}
}

func TestIDsSortedAndForEach(t *testing.T) {
	s := FromIDs(70, 3, 900, 64)
	ids := s.IDs()
	want := []int{3, 64, 70, 900}
	for i, w := range want {
		if ids[i] != w {
			t.Fatalf("IDs()[%d] = %d, want %d", i, ids[i], w)
		}
	}
	var visited []int
	s.ForEach(func(id int) bool {
		visited = append(visited, id)
		return id != 70 // stop early
	})
	if len(visited) != 3 || visited[2] != 70 {
		t.Fatalf("ForEach early stop wrong: %v", visited)
	}
}

func TestString(t *testing.T) {
	if got := FromIDs(0, 1, 2, 3, 7, 9, 10).String(); got != "{0-3,7,9-10}" {
		t.Fatalf("String() = %q", got)
	}
	if got := (&Set{}).String(); got != "{}" {
		t.Fatalf("empty String() = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIDs(1, 2)
	b := a.Clone()
	b.Add(3)
	a.Remove(1)
	if a.Len() != 1 || b.Len() != 3 {
		t.Fatal("clone not independent")
	}
}

// randomSet builds a set and its reference map representation.
func randomSet(r *rand.Rand, max int) (*Set, map[int]bool) {
	s := &Set{}
	m := map[int]bool{}
	n := r.Intn(64)
	for i := 0; i < n; i++ {
		id := r.Intn(max)
		s.Add(id)
		m[id] = true
	}
	return s, m
}

// Property: set algebra matches a reference map-based implementation.
func TestAlgebraMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, am := randomSet(r, 300)
		b, bm := randomSet(r, 300)

		u := Union(a, b)
		d := Difference(a, b)
		i := Intersection(a, b)

		for id := 0; id < 300; id++ {
			if u.Contains(id) != (am[id] || bm[id]) {
				return false
			}
			if d.Contains(id) != (am[id] && !bm[id]) {
				return false
			}
			if i.Contains(id) != (am[id] && bm[id]) {
				return false
			}
		}
		// Cardinality identities.
		if u.Len() != d.Len()+i.Len()+Difference(b, a).Len() {
			return false
		}
		return u.Len() == a.Len()+b.Len()-i.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pick(k) partitions the set: result and remainder are disjoint,
// their union is the original, and sizes add up.
func TestPickPartitionProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s, _ := randomSet(r, 500)
		orig := s.Clone()
		k := int(kRaw)
		got := s.Pick(k)
		wantTaken := k
		if orig.Len() < k {
			wantTaken = orig.Len()
		}
		if got.Len() != wantTaken {
			return false
		}
		if got.Intersects(s) {
			return false
		}
		return Union(got, s).Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Len always equals the number of IDs yielded.
func TestLenConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, m := randomSet(r, 1000)
		// Interleave removes.
		for id := range m {
			if r.Intn(2) == 0 {
				s.Remove(id)
				delete(m, id)
			}
		}
		return s.Len() == len(s.IDs()) && s.Len() == len(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionWith4392(b *testing.B) {
	x := Range(0, 4392)
	y := Range(2000, 4392)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.UnionWith(y)
	}
}

func BenchmarkPick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := Range(0, 4392)
		s.Pick(2048)
	}
}
