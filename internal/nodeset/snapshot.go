package nodeset

import (
	"math/bits"

	"hybridsched/internal/snapshot"
)

// EncodeSnapshot serializes the set as its raw bit words. The encoding is
// canonical: trailing zero words are trimmed so that equal sets always
// produce equal bytes regardless of capacity history.
func (s *Set) EncodeSnapshot(e *snapshot.Enc) {
	words := s.words
	for len(words) > 0 && words[len(words)-1] == 0 {
		words = words[:len(words)-1]
	}
	e.U64s(words)
}

// DecodeSnapshotSet reads a set written by EncodeSnapshot. The cardinality is
// recomputed from the words, so a corrupt count can never disagree with the
// members. On malformed input the decoder's error is set and an empty set is
// returned.
func DecodeSnapshotSet(d *snapshot.Dec) *Set {
	words := d.U64s()
	if d.Err() != nil {
		return &Set{}
	}
	s := &Set{words: words}
	for _, w := range words {
		s.count += bits.OnesCount64(w)
	}
	return s
}
