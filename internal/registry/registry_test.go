package registry

import (
	"strings"
	"testing"

	"hybridsched/internal/job"
	"hybridsched/internal/policy"
	"hybridsched/internal/sim"
)

func TestBuiltinsResolve(t *testing.T) {
	for _, name := range []string{"baseline", "N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA"} {
		m, err := NewScheduler(name, SchedulerConfig{DirectedReturn: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m == nil {
			t.Fatalf("%s: nil mechanism", name)
		}
	}
	for _, name := range []string{"", "fcfs", "sjf", "ljf", "wfp3"} {
		if PolicyByName(name) == nil {
			t.Fatalf("builtin policy %q did not resolve", name)
		}
	}
}

func TestUnknownSchedulerListsValidNames(t *testing.T) {
	_, err := NewScheduler("nope", SchedulerConfig{})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "CUA&SPAA") || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("error does not list valid names: %v", err)
	}
}

type namedBaseline struct {
	sim.Baseline
	name string
}

func (m namedBaseline) Name() string { return m.name }

func TestRegisterSchedulerRules(t *testing.T) {
	factory := func(SchedulerConfig) (sim.Mechanism, error) {
		return namedBaseline{name: "reg-test"}, nil
	}
	if err := RegisterScheduler("", factory); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := RegisterScheduler("reg-test", nil); err == nil {
		t.Fatal("nil factory must fail")
	}
	if err := RegisterScheduler("CUA&SPAA", factory); err == nil {
		t.Fatal("built-in collision must fail")
	}
	// The registry is process-global and append-only, so under -count=N the
	// name persists from the previous run; only an unexpected error fails.
	if err := RegisterScheduler("reg-test", factory); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	if err := RegisterScheduler("reg-test", factory); err == nil {
		t.Fatal("duplicate must fail")
	}
	m, err := NewScheduler("reg-test", SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "reg-test" {
		t.Fatalf("resolved wrong mechanism %q", m.Name())
	}
	names := SchedulerNames()
	if names[0] != "baseline" || names[len(names)-1] < "reg-test" {
		t.Fatalf("SchedulerNames order unexpected: %v", names)
	}
}

type sizePolicy struct{}

func (sizePolicy) Name() string                     { return "reg-size" }
func (sizePolicy) Less(a, b *job.Job, _ int64) bool { return a.Size < b.Size }

func TestRegisterPolicyRules(t *testing.T) {
	if err := RegisterPolicy(nil); err == nil {
		t.Fatal("nil policy must fail")
	}
	if err := RegisterPolicy(policy.FCFS{}); err == nil {
		t.Fatal("built-in collision must fail")
	}
	if err := RegisterPolicy(sizePolicy{}); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	if err := RegisterPolicy(sizePolicy{}); err == nil {
		t.Fatal("duplicate must fail")
	}
	if PolicyByName("reg-size") == nil {
		t.Fatal("registered policy did not resolve")
	}
	found := false
	for _, n := range PolicyNames() {
		if n == "reg-size" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reg-size missing from PolicyNames() = %v", PolicyNames())
	}
}

func TestExplicitZeroReleaseThresholdReachesCore(t *testing.T) {
	// The negative sentinel must flow through to a zero-second hold; the
	// zero value must keep the paper default. Both resolve through the same
	// built-in path Simulate and the sweep runner use.
	for _, name := range []string{"CUA&SPAA", "CUP&PAA"} {
		if _, err := NewScheduler(name, SchedulerConfig{ReleaseThreshold: -1, DirectedReturn: true}); err != nil {
			t.Fatalf("%s with explicit-zero threshold: %v", name, err)
		}
	}
}
