// Package registry resolves scheduling mechanisms and queue-ordering
// policies by name, combining the built-ins (the paper's six mechanisms, the
// FCFS/EASY baseline, and the fcfs/sjf/ljf/wfp3 orderings) with extensions
// registered at runtime. It is the single name-resolution point shared by
// the public facade, the sweep runner, and the CLIs, so a scheduler or
// policy registered once participates everywhere a name is accepted.
//
// The registry is safe for concurrent use. Registration is append-only:
// names cannot be overwritten or shadow a built-in, which keeps every
// resolvable name stable for the lifetime of the process (sweep determinism
// depends on it).
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hybridsched/internal/core"
	"hybridsched/internal/policy"
	"hybridsched/internal/sim"
)

// SchedulerConfig carries the system knobs a scheduler factory may honor.
// Built-in mechanisms map it onto core.Config; custom factories are free to
// ignore any of it.
type SchedulerConfig struct {
	// ReleaseThreshold is how long reserved nodes are held for a no-show
	// on-demand job past its estimated arrival, in seconds. Zero means the
	// paper default (600 s); negative means an explicit zero.
	ReleaseThreshold int64
	// DirectedReturn enables the return-to-lender rule (paper §III-B.3).
	DirectedReturn bool
	// BackfillReserved lets backfill jobs squat on reserved nodes
	// (paper §III-B.1).
	BackfillReserved bool
}

// SchedulerFactory builds a fresh scheduler instance for one simulation run.
// Factories must not share mutable state between the instances they return:
// sweep cells run concurrently.
type SchedulerFactory func(cfg SchedulerConfig) (sim.Mechanism, error)

var (
	mu         sync.RWMutex
	schedulers = map[string]SchedulerFactory{}
	policies   = map[string]policy.Ordering{}
)

// builtinSchedulers lists the always-available names in canonical order.
func builtinSchedulers() []string {
	return append([]string{"baseline"}, core.Names()...)
}

// builtinPolicies lists the always-available queue orderings.
func builtinPolicies() []string { return []string{"fcfs", "sjf", "ljf", "wfp3"} }

// RegisterScheduler makes factory resolvable by name everywhere mechanism
// names are accepted (Simulate, sessions, sweeps, the CLIs). It fails on an
// empty name, a built-in collision, or a duplicate registration.
func RegisterScheduler(name string, factory SchedulerFactory) error {
	if name == "" {
		return fmt.Errorf("registry: empty scheduler name")
	}
	if factory == nil {
		return fmt.Errorf("registry: nil factory for scheduler %q", name)
	}
	for _, b := range builtinSchedulers() {
		if name == b {
			return fmt.Errorf("registry: scheduler %q is a built-in", name)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := schedulers[name]; dup {
		return fmt.Errorf("registry: scheduler %q already registered", name)
	}
	schedulers[name] = factory
	return nil
}

// NewScheduler builds a fresh instance of the named scheduler: "baseline",
// one of the six core mechanisms, or a registered extension. The error for
// an unknown name lists every valid one.
func NewScheduler(name string, cfg SchedulerConfig) (sim.Mechanism, error) {
	if name == "baseline" {
		return sim.Baseline{}, nil
	}
	for _, b := range core.Names() {
		if name == b {
			return core.ByName(name, core.Config{
				ReleaseThreshold: cfg.ReleaseThreshold,
				DirectedReturn:   cfg.DirectedReturn,
				BackfillReserved: cfg.BackfillReserved,
			})
		}
	}
	mu.RLock()
	factory, ok := schedulers[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: unknown scheduler %q (valid: %s)",
			name, strings.Join(SchedulerNames(), ", "))
	}
	return factory(cfg)
}

// SchedulerNames returns every resolvable scheduler name: the built-ins in
// canonical order, then registered extensions sorted alphabetically.
func SchedulerNames() []string {
	names := builtinSchedulers()
	mu.RLock()
	extra := make([]string, 0, len(schedulers))
	for name := range schedulers {
		extra = append(extra, name)
	}
	mu.RUnlock()
	sort.Strings(extra)
	return append(names, extra...)
}

// RegisterPolicy makes ord resolvable by its Name() everywhere policy names
// are accepted. It fails on an empty name, a built-in collision, or a
// duplicate registration.
func RegisterPolicy(ord policy.Ordering) error {
	if ord == nil {
		return fmt.Errorf("registry: nil policy")
	}
	name := ord.Name()
	if name == "" {
		return fmt.Errorf("registry: empty policy name")
	}
	if policy.ByName(name) != nil {
		return fmt.Errorf("registry: policy %q is a built-in", name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := policies[name]; dup {
		return fmt.Errorf("registry: policy %q already registered", name)
	}
	policies[name] = ord
	return nil
}

// PolicyByName resolves a queue ordering: the built-ins (empty string means
// fcfs) or a registered extension. Unknown names return nil.
func PolicyByName(name string) policy.Ordering {
	if ord := policy.ByName(name); ord != nil {
		return ord
	}
	mu.RLock()
	defer mu.RUnlock()
	return policies[name]
}

// PolicyNames returns every resolvable policy name: the built-ins in
// canonical order, then registered extensions sorted alphabetically.
func PolicyNames() []string {
	names := builtinPolicies()
	mu.RLock()
	extra := make([]string, 0, len(policies))
	for name := range policies {
		extra = append(extra, name)
	}
	mu.RUnlock()
	sort.Strings(extra)
	return append(names, extra...)
}
