package simtest

import (
	"strings"
	"testing"

	"hybridsched/internal/job"
	"hybridsched/internal/sim"
)

// TestInvariantCheckerCatches verifies the checker itself detects each class
// of violation — a harness that cannot fail proves nothing.
func TestInvariantCheckerCatches(t *testing.T) {
	ev := func(typ sim.EventType, at int64, id, nodes int) sim.Event {
		return sim.Event{Type: typ, Time: at, Job: id, Class: job.Rigid, Nodes: nodes}
	}
	cases := []struct {
		name   string
		events []sim.Event
		want   string // substring of the violation, "" for a clean run
	}{
		{"clean", []sim.Event{
			ev(sim.EventStart, 0, 1, 4),
			ev(sim.EventEnd, 10, 1, 4),
		}, ""},
		{"time-backwards", []sim.Event{
			ev(sim.EventStart, 10, 1, 4),
			ev(sim.EventEnd, 5, 1, 4),
		}, "time went backwards"},
		{"double-allocation", []sim.Event{
			ev(sim.EventStart, 0, 1, 4),
			ev(sim.EventStart, 1, 1, 4),
		}, "double allocation"},
		{"release-mismatch", []sim.Event{
			ev(sim.EventStart, 0, 1, 4),
			ev(sim.EventEnd, 10, 1, 3),
		}, "but it held"},
		{"over-shrink", []sim.Event{
			ev(sim.EventStart, 0, 1, 4),
			ev(sim.EventShrink, 5, 1, 6),
		}, "shrink"},
		{"expand-nothing", []sim.Event{
			ev(sim.EventExpand, 0, 1, 2),
		}, "holds nothing"},
		{"overcommit", []sim.Event{
			ev(sim.EventStart, 0, 1, 6),
			ev(sim.EventStart, 0, 2, 6),
		}, "conservation broken"},
		{"clean-degraded", []sim.Event{
			ev(sim.EventNodeDown, 0, -1, 4),
			ev(sim.EventStart, 1, 1, 4),
			ev(sim.EventEnd, 10, 1, 4),
			ev(sim.EventNodeUp, 20, -1, 4),
		}, ""},
		{"start-onto-down-nodes", []sim.Event{
			ev(sim.EventNodeDown, 0, -1, 4),
			ev(sim.EventStart, 1, 1, 6),
		}, "allocation onto unavailable nodes"},
		{"held-past-capacity-shrink", []sim.Event{
			ev(sim.EventStart, 0, 1, 6),
			ev(sim.EventNodeDown, 5, -1, 4),
		}, "conservation broken"},
		{"down-overflow", []sim.Event{
			ev(sim.EventNodeDown, 0, -1, 9),
		}, "down ledger broken"},
		{"up-underflow", []sim.Event{
			ev(sim.EventNodeDown, 0, -1, 2),
			ev(sim.EventNodeUp, 1, -1, 3),
		}, "down ledger broken"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chk := NewInvariantChecker(8)
			sink := chk.Sink()
			for _, e := range tc.events {
				sink(e)
			}
			err := chk.Err()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("clean stream flagged: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want violation containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestScenarioValidation pins the harness's own error paths.
func TestScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{Mechanism: "CUA&SPAA", Mix: "W9", Seed: 1, Nodes: 256, Weeks: 1}); err == nil {
		t.Fatal("unknown mix must fail")
	}
	if _, err := Run(Scenario{Mechanism: "nope", Mix: "W1", Seed: 1, Nodes: 256, Weeks: 1}); err == nil {
		t.Fatal("unknown mechanism must fail")
	}
}
