package simtest

import (
	"testing"
)

// benchScenario is the engine benchmark scale: the full mechanism × mix grid
// at 1024 nodes over one week, the same scale cmd/benchengine measures for
// BENCH_engine.json.
func benchScenario(mech, mix string) Scenario {
	return Scenario{Mechanism: mech, Mix: mix, Seed: 1, Nodes: 1024, Weeks: 1}
}

// BenchmarkEngine runs one full simulation per iteration for every mechanism
// × Table III mix; ns/op is the cost of a whole 1024-node/1-week run and
// allocs/op tracks the engine's allocation budget (trace materialization and
// engine construction are excluded from the timed region).
func BenchmarkEngine(b *testing.B) {
	for _, mech := range Mechanisms() {
		for _, mix := range Mixes() {
			sc := benchScenario(mech, mix)
			records, err := sc.Records()
			if err != nil {
				b.Fatal(err)
			}
			b.Run(mech+"/"+mix, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					e, err := NewEngine(sc, records)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := e.Run(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(records)), "jobs/sim")
			})
		}
	}
}
