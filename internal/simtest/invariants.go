package simtest

import (
	"fmt"

	"hybridsched/internal/sim"
)

// InvariantChecker validates the structural invariants of a simulation from
// its typed event stream, independently of the engine's own bookkeeping:
//
//   - monotone virtual time: events never carry a timestamp earlier than the
//     one before;
//   - no double allocation: a job never starts while it already holds nodes;
//   - conservation of nodes against time-varying capacity: the sum of all
//     held nodes never exceeds the capacity currently in service (system
//     size minus nodes reported down by EventNodeDown/EventNodeUp), every
//     release (end, preempt) returns exactly what the job held, and
//     shrink/expand deltas keep the per-job ledger non-negative;
//   - no allocation onto unavailable nodes: a start can only draw from
//     in-service capacity not already held, so a start larger than the free
//     in-service remainder — the observable signature of allocating onto a
//     down or drained node — is a violation (the cluster-level
//     Config.Validate check pins the same property per node ID);
//   - the down ledger itself is sane: down never goes negative or beyond
//     the system size.
//
// Install it with sim.Engine.SetEventSink before the first step. Combined
// with Config.Validate (the cluster's exact partition check after every
// event), a clean run proves the loan/return plumbing conserves nodes.
type InvariantChecker struct {
	nodes  int
	down   int // nodes currently out of service per the event stream
	last   int64
	seen   bool
	held   map[int]int // job ID -> nodes currently held
	total  int         // sum of held
	errs   []string
	maxErr int
}

// NewInvariantChecker returns a checker for a system of the given node count.
func NewInvariantChecker(nodes int) *InvariantChecker {
	return &InvariantChecker{nodes: nodes, held: make(map[int]int), maxErr: 10}
}

// Sink adapts the checker to the engine's event-sink signature.
func (c *InvariantChecker) Sink() func(sim.Event) { return c.handle }

func (c *InvariantChecker) violate(format string, args ...any) {
	if len(c.errs) < c.maxErr {
		c.errs = append(c.errs, fmt.Sprintf(format, args...))
	}
}

func (c *InvariantChecker) handle(ev sim.Event) {
	if c.seen && ev.Time < c.last {
		c.violate("time went backwards: %v at t=%d after t=%d", ev.Type, ev.Time, c.last)
	}
	c.last, c.seen = ev.Time, true

	switch ev.Type {
	case sim.EventStart:
		if held := c.held[ev.Job]; held != 0 {
			c.violate("double allocation: job %d started with %d nodes while holding %d at t=%d",
				ev.Job, ev.Nodes, held, ev.Time)
		}
		if free := c.nodes - c.down - c.total; ev.Nodes > free {
			c.violate("allocation onto unavailable nodes: job %d started with %d nodes but only %d in-service nodes are unheld (%d down) at t=%d",
				ev.Job, ev.Nodes, free, c.down, ev.Time)
		}
		c.held[ev.Job] = ev.Nodes
		c.total += ev.Nodes
	case sim.EventEnd, sim.EventPreempt:
		if held := c.held[ev.Job]; held != ev.Nodes {
			c.violate("%v of job %d releases %d nodes but it held %d at t=%d",
				ev.Type, ev.Job, ev.Nodes, held, ev.Time)
		}
		c.total -= c.held[ev.Job]
		delete(c.held, ev.Job)
	case sim.EventShrink:
		if c.held[ev.Job] < ev.Nodes {
			c.violate("shrink of job %d by %d nodes but it held %d at t=%d",
				ev.Job, ev.Nodes, c.held[ev.Job], ev.Time)
		}
		c.held[ev.Job] -= ev.Nodes
		c.total -= ev.Nodes
	case sim.EventExpand:
		if c.held[ev.Job] == 0 {
			c.violate("expand of job %d by %d nodes but it holds nothing at t=%d",
				ev.Job, ev.Nodes, ev.Time)
		}
		c.held[ev.Job] += ev.Nodes
		c.total += ev.Nodes
	case sim.EventNodeDown:
		c.down += ev.Nodes
		if c.down > c.nodes {
			c.violate("down ledger broken: %d of %d nodes down at t=%d", c.down, c.nodes, ev.Time)
		}
	case sim.EventNodeUp:
		c.down -= ev.Nodes
		if c.down < 0 {
			c.violate("down ledger broken: %d nodes down (negative) at t=%d", c.down, ev.Time)
		}
	}
	if c.total > c.nodes-c.down {
		c.violate("conservation broken: %d nodes held with %d of %d in service after %v of job %d at t=%d",
			c.total, c.nodes-c.down, c.nodes, ev.Type, ev.Job, ev.Time)
	}
}

// Err returns nil if every invariant held, or an error describing the first
// violations (capped at ten).
func (c *InvariantChecker) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return fmt.Errorf("simtest: %d invariant violation(s), first: %v", len(c.errs), c.errs)
}

// HeldTotal returns the checker's current sum of held nodes (0 after a run
// in which every started job ended).
func (c *InvariantChecker) HeldTotal() int { return c.total }
