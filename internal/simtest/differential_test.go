package simtest

import (
	"bytes"
	"testing"
)

// testScale is the grid scale the harness tests run at: the full 7-mechanism
// × W1..W5 grid on a 1024-node system over one simulated week (a few hundred
// jobs and a few thousand events per cell) — the same scale cmd/benchengine
// measures.
func testScale(mech, mix string) Scenario {
	return Scenario{Mechanism: mech, Mix: mix, Seed: 1, Nodes: 1024, Weeks: 1}
}

// TestDifferentialReports is the differential checker: for every mechanism ×
// mix cell, the optimized engine and the retained naive reference path must
// produce byte-identical canonical reports. Any hot-path refactor that
// changes scheduling outcomes — a queue ordered differently, a running view
// assembled in another order, a planner scratch bug — fails here.
func TestDifferentialReports(t *testing.T) {
	for _, mech := range Mechanisms() {
		for _, mix := range Mixes() {
			sc := testScale(mech, mix)
			t.Run(mech+"/"+mix, func(t *testing.T) {
				t.Parallel()
				opt, ref, err := Differential(sc)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(opt, ref) {
					t.Fatalf("optimized and reference reports diverge\noptimized: %s\nreference: %s",
						truncate(opt), truncate(ref))
				}
			})
		}
	}
}

// TestDifferentialBackfillReserved adds BackfillReserved cells to the
// differential check: with squatting on, backfill planning runs through the
// reserved-headroom charge model (shared reserve, per-claim extras), so these
// cells pin exactly the accounting the backfill bugfixes changed. Mixes W2/W4
// carry the heaviest on-demand share, so reservations (and squatters) are
// actually exercised.
func TestDifferentialBackfillReserved(t *testing.T) {
	for _, mech := range []string{"baseline", "N&PAA", "CUA&SPAA", "CUP&PAA"} {
		for _, mix := range []string{"W2", "W4"} {
			sc := testScale(mech, mix)
			sc.BackfillReserved = true
			t.Run(mech+"/"+mix, func(t *testing.T) {
				t.Parallel()
				opt, ref, err := Differential(sc)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(opt, ref) {
					t.Fatalf("optimized and reference reports diverge with BackfillReserved\noptimized: %s\nreference: %s",
						truncate(opt), truncate(ref))
				}
			})
		}
	}
}

// TestDeterministicReplay pins run-to-run determinism of the optimized path:
// the same scenario executed twice yields byte-identical canonical reports.
// Hidden iteration-order dependence (map ranges feeding scheduling decisions)
// would break this.
func TestDeterministicReplay(t *testing.T) {
	for _, cell := range []Scenario{
		testScale("baseline", "W1"),
		testScale("CUA&SPAA", "W5"),
		testScale("CUP&PAA", "W4"),
	} {
		t.Run(cell.Mechanism+"/"+cell.Mix, func(t *testing.T) {
			t.Parallel()
			a, err := CanonicalRun(cell)
			if err != nil {
				t.Fatal(err)
			}
			b, err := CanonicalRun(cell)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("replay diverges\nfirst:  %s\nsecond: %s", truncate(a), truncate(b))
			}
		})
	}
}

// TestRunInvariants drives every grid cell with the cluster partition check
// enabled after each event (no double allocation, exact conservation of
// nodes across loans and returns at the resource-manager level) and the
// event-stream InvariantChecker attached (monotone time, start/release
// pairing, global held-node conservation at the observable level).
func TestRunInvariants(t *testing.T) {
	for _, mech := range Mechanisms() {
		for _, mix := range Mixes() {
			sc := testScale(mech, mix)
			sc.Validate = true
			t.Run(mech+"/"+mix, func(t *testing.T) {
				t.Parallel()
				records, err := sc.Records()
				if err != nil {
					t.Fatal(err)
				}
				e, err := NewEngine(sc, records)
				if err != nil {
					t.Fatal(err)
				}
				chk := NewInvariantChecker(sc.Nodes)
				e.SetEventSink(chk.Sink())
				if _, err := e.Run(); err != nil {
					t.Fatal(err)
				}
				if err := chk.Err(); err != nil {
					t.Fatal(err)
				}
				if chk.HeldTotal() != 0 {
					t.Fatalf("%d nodes still held after every job completed", chk.HeldTotal())
				}
			})
		}
	}
}

func truncate(b []byte) []byte {
	const n = 400
	if len(b) <= n {
		return b
	}
	return append(append([]byte{}, b[:n]...), "..."...)
}
