package simtest

import (
	"bytes"
	"testing"
)

// faultScale is the fault-enabled grid scale: the clean testScale plus an
// aggressive fault process (6 h system MTBF, 2 h mean repair) so every cell
// sees dozens of failures, repairs shrinking capacity, and restarts.
func faultScale(mech, mix string) Scenario {
	sc := testScale(mech, mix)
	sc.FaultMTBF = 6 * 3600
	sc.FaultRepair = 2 * 3600
	return sc
}

// TestFaultDifferentialReports pins the optimized engine against the naive
// reference path with the fault injector enabled: failures, repair windows,
// and the drain-free capacity accounting must not diverge between the two
// scheduling paths. (The clean-run differential lives in
// TestDifferentialReports; this is the degraded-capacity counterpart.)
func TestFaultDifferentialReports(t *testing.T) {
	for _, mech := range Mechanisms() {
		for _, mix := range []string{"W2", "W5"} {
			sc := faultScale(mech, mix)
			t.Run(mech+"/"+mix, func(t *testing.T) {
				t.Parallel()
				opt, ref, err := Differential(sc)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(opt, ref) {
					t.Fatalf("optimized and reference reports diverge under faults\noptimized: %s\nreference: %s",
						truncate(opt), truncate(ref))
				}
			})
		}
	}
}

// TestInstantRepairDifferential covers the legacy instant-repair shortcut
// (MeanRepair zero) on both engine paths.
func TestInstantRepairDifferential(t *testing.T) {
	for _, mech := range []string{"baseline", "CUA&SPAA"} {
		sc := faultScale(mech, "W5")
		sc.FaultRepair = 0
		t.Run(mech, func(t *testing.T) {
			t.Parallel()
			opt, ref, err := Differential(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(opt, ref) {
				t.Fatalf("instant-repair reports diverge\noptimized: %s\nreference: %s",
					truncate(opt), truncate(ref))
			}
		})
	}
}

// TestFaultRunInvariants drives every mechanism with the injector enabled,
// the cluster partition check after each event, and the extended
// InvariantChecker: conservation against the time-varying in-service
// capacity and no allocation onto down nodes.
func TestFaultRunInvariants(t *testing.T) {
	for _, mech := range Mechanisms() {
		sc := faultScale(mech, "W5")
		sc.Validate = true
		t.Run(mech, func(t *testing.T) {
			t.Parallel()
			records, err := sc.Records()
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(sc, records)
			if err != nil {
				t.Fatal(err)
			}
			chk := NewInvariantChecker(sc.Nodes)
			e.SetEventSink(chk.Sink())
			rep, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := chk.Err(); err != nil {
				t.Fatal(err)
			}
			if chk.HeldTotal() != 0 {
				t.Fatalf("%d nodes still held after every job completed", chk.HeldTotal())
			}
			if rep.FailuresInjected == 0 {
				t.Fatal("no failures struck at a 6 h MTBF over a week")
			}
			if rep.DownNodeSeconds == 0 {
				t.Fatal("repair windows removed no capacity")
			}
		})
	}
}

// TestFaultReplayDeterminism pins run-to-run determinism of a fault-enabled
// cell: the failure timeline, victim choice, and repair draws must derive
// only from the scenario seed.
func TestFaultReplayDeterminism(t *testing.T) {
	sc := faultScale("CUA&SPAA", "W3")
	a, err := CanonicalRun(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalRun(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("fault replay diverges\nfirst:  %s\nsecond: %s", truncate(a), truncate(b))
	}
}
