// Package simtest is the simulation property-test harness: it builds
// engine scenarios over the full mechanism × workload grid of the paper's
// evaluation, runs a differential checker that pins the optimized engine
// against the retained naive reference path (byte-identical reports), and
// asserts structural invariants — no node double-allocation, conservation of
// nodes across loans and returns, monotone virtual time — over the typed
// event stream of a run.
//
// The harness exists so hot-path refactors of internal/sim stay safe: any
// divergence between the allocation-lean structures and the straightforward
// map-and-re-sort semantics they replaced shows up as a report mismatch or an
// invariant violation, not as a silently different experiment result.
package simtest

import (
	"encoding/json"
	"fmt"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/faults"
	"hybridsched/internal/metrics"
	"hybridsched/internal/registry"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// Mechanisms returns the seven schedulers of the paper's evaluation: the
// FCFS/EASY baseline plus the six hybrid mechanisms ({N,CUA,CUP} × {PAA,SPAA}).
func Mechanisms() []string {
	return []string{"baseline", "N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA"}
}

// Mixes returns the five Table III advance-notice mixes.
func Mixes() []string { return []string{"W1", "W2", "W3", "W4", "W5"} }

// Scenario is one cell of the engine test/benchmark grid: a scheduler, a
// Table III notice mix, the system/trace scale, and (optionally) a fault
// process exercising the availability model.
type Scenario struct {
	Mechanism string // one of Mechanisms()
	Mix       string // one of Mixes()
	Seed      int64
	Nodes     int // system size; also scales the generated workload
	Weeks     int
	Validate  bool // check the cluster partition invariant after every event
	Reference bool // drive the retained naive reference path of the engine

	// BackfillReserved lets backfill candidates squat on nodes reserved for
	// pending on-demand jobs (paper §III-B.1). It routes the planner through
	// the reserved-headroom accounting, so differential cells with it on pin
	// the shared-reserve charge model against the reference path.
	BackfillReserved bool

	// FaultMTBF, when positive, wraps the mechanism in the fault injector at
	// this system MTBF (seconds). FaultRepair is the mean node repair time
	// (0 = the legacy instant-repair shortcut). The failure timeline derives
	// from Seed, so a scenario remains fully deterministic.
	FaultMTBF   float64
	FaultRepair float64
}

// Records generates the scenario's trace; the same scenario always yields the
// same records.
func (sc Scenario) Records() ([]trace.Record, error) {
	mix, err := workload.MixByName(sc.Mix)
	if err != nil {
		return nil, err
	}
	return workload.Generate(workload.Config{
		Seed: sc.Seed, Nodes: sc.Nodes, Weeks: sc.Weeks, Mix: mix,
	})
}

// NewEngine materializes records (fresh jobs — job state is consumed by a
// run) and builds an engine with a fresh mechanism instance, using the
// paper-default scheduler configuration (directed returns on, Daly-optimal
// checkpointing at 24 h MTBF). With FaultMTBF set the mechanism is wrapped
// in the fault injector, so the availability model is exercised end to end.
func NewEngine(sc Scenario, records []trace.Record) (*sim.Engine, error) {
	jobs := trace.Materialize(records, func(size int) checkpoint.Plan {
		return checkpoint.NewPlan(size, 24*3600, 1)
	})
	mech, err := registry.NewScheduler(sc.Mechanism, registry.SchedulerConfig{
		DirectedReturn:   true,
		BackfillReserved: sc.BackfillReserved,
	})
	if err != nil {
		return nil, err
	}
	if sc.FaultMTBF > 0 {
		mech = faults.Wrap(mech, faults.Config{
			MTBF:       sc.FaultMTBF,
			Seed:       sc.Seed,
			Horizon:    int64(sc.Weeks+4) * simtime.Week,
			MeanRepair: sc.FaultRepair,
		})
	}
	return sim.New(sim.Config{
		Nodes:            sc.Nodes,
		Validate:         sc.Validate,
		Reference:        sc.Reference,
		BackfillReserved: sc.BackfillReserved,
	}, jobs, mech)
}

// Run generates, builds, and runs the scenario to completion.
func Run(sc Scenario) (metrics.Report, error) {
	records, err := sc.Records()
	if err != nil {
		return metrics.Report{}, err
	}
	e, err := NewEngine(sc, records)
	if err != nil {
		return metrics.Report{}, err
	}
	return e.Run()
}

// ReportJSON canonicalizes a report for byte-level comparison: the two
// wall-clock decision-latency fields — the only nondeterministic content of a
// report — are zeroed (their count stays, it is virtual-time deterministic),
// and the rest marshals as-is.
func ReportJSON(r metrics.Report) ([]byte, error) {
	r.MeanDecisionMs, r.MaxDecisionMs = 0, 0
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("simtest: marshal report: %w", err)
	}
	return b, nil
}

// CanonicalRun runs the scenario to completion and returns the canonical
// report encoding — the byte string every equivalence suite (differential,
// replay, snapshot/restore) compares against.
func CanonicalRun(sc Scenario) ([]byte, error) {
	rep, err := Run(sc)
	if err != nil {
		return nil, fmt.Errorf("simtest: %s/%s: %w", sc.Mechanism, sc.Mix, err)
	}
	return ReportJSON(rep)
}

// Differential runs the scenario twice — once on the optimized engine path
// and once on the retained naive reference path — and returns both canonical
// report encodings. The two must be byte-identical; the differential tests
// hold every mechanism × mix cell to that.
func Differential(sc Scenario) (optimized, reference []byte, err error) {
	sc.Reference = false
	optimized, err = CanonicalRun(sc)
	if err != nil {
		return nil, nil, fmt.Errorf("simtest: optimized path: %w", err)
	}
	sc.Reference = true
	reference, err = CanonicalRun(sc)
	if err != nil {
		return nil, nil, fmt.Errorf("simtest: reference path: %w", err)
	}
	return optimized, reference, nil
}
