package simtest

import (
	"bytes"
	"testing"

	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
)

// snapshotDrains is the maintenance schedule the drain-enabled restore cells
// use: two overlapping windows inside the first simulated week, so snapshots
// taken at the midpoints catch windows in every phase — scheduled, open and
// absorbing, and closed.
func snapshotDrains(e *sim.Engine, t *testing.T) {
	t.Helper()
	if err := e.ScheduleDrain(2*simtime.Day, 2*simtime.Day, 64); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleDrain(3*simtime.Day, 12*simtime.Hour, 128); err != nil {
		t.Fatal(err)
	}
}

// buildEngine materializes a fresh engine for the scenario, optionally with
// the test maintenance schedule attached.
func buildEngine(t *testing.T, sc Scenario, drains bool) *sim.Engine {
	t.Helper()
	records, err := sc.Records()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(sc, records)
	if err != nil {
		t.Fatal(err)
	}
	if drains {
		snapshotDrains(e, t)
	}
	return e
}

// stepN advances the engine by at most n events and reports whether the run
// completed within them.
func stepN(t *testing.T, e *sim.Engine, n int) bool {
	t.Helper()
	for i := 0; i < n; i++ {
		ok, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return true
		}
	}
	return false
}

// finish runs the engine to completion and returns the canonical report.
func finish(t *testing.T, e *sim.Engine) []byte {
	t.Helper()
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// checkRestoreEquivalence is the golden snapshot check for one grid cell:
//
//  1. run the scenario uninterrupted, counting events, and keep its canonical
//     report as the reference bytes;
//  2. run it again, snapshotting at three midpoints (¼, ½, ¾ of the event
//     count) while continuing to completion — the second run must still match
//     the reference, proving Snapshot is side-effect-free;
//  3. restore each snapshot into a freshly built engine and run to
//     completion — every resumed run must reproduce the reference bytes
//     exactly.
//
// The restored engines are built the ordinary way (arrival events, fault
// timelines, and drain schedules already pushed), so the check also proves
// LoadSnapshot fully replaces that pre-seeded state.
func checkRestoreEquivalence(t *testing.T, sc Scenario, drains bool) {
	t.Helper()

	ref := buildEngine(t, sc, drains)
	total := 0
	for {
		ok, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		total++
	}
	want, err := ReportJSON(ref.Report())
	if err != nil {
		t.Fatal(err)
	}
	if total < 8 {
		t.Fatalf("run too short to snapshot midpoints: %d events", total)
	}

	second := buildEngine(t, sc, drains)
	var snaps [][]byte
	at := 0
	for _, point := range []int{total / 4, total / 2, 3 * total / 4} {
		if stepN(t, second, point-at) {
			t.Fatalf("run completed before midpoint %d of %d", point, total)
		}
		at = point
		snap, err := second.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
	if got := finish(t, second); !bytes.Equal(got, want) {
		t.Fatalf("snapshotting perturbed the run\ngot:  %s\nwant: %s", truncate(got), truncate(want))
	}

	for i, snap := range snaps {
		restored := buildEngine(t, sc, drains)
		if err := restored.LoadSnapshot(snap); err != nil {
			t.Fatalf("restore midpoint %d: %v", i+1, err)
		}
		if got := finish(t, restored); !bytes.Equal(got, want) {
			t.Fatalf("restored run diverges at midpoint %d\ngot:  %s\nwant: %s",
				i+1, truncate(got), truncate(want))
		}
	}
}

// TestSnapshotRestoreEquivalence holds every mechanism × mix cell to the
// byte-identical-resume contract on clean runs.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, mech := range Mechanisms() {
		for _, mix := range Mixes() {
			sc := testScale(mech, mix)
			t.Run(mech+"/"+mix, func(t *testing.T) {
				t.Parallel()
				checkRestoreEquivalence(t, sc, false)
			})
		}
	}
}

// TestSnapshotRestoreEquivalenceFaults repeats the grid with the fault
// injector (random failures, repair windows) and overlapping maintenance
// drains enabled, so restores must also carry the down pool, drain windows in
// every phase, pending repair events, and the injector's RNG position.
func TestSnapshotRestoreEquivalenceFaults(t *testing.T) {
	for _, mech := range Mechanisms() {
		for _, mix := range Mixes() {
			sc := faultScale(mech, mix)
			t.Run(mech+"/"+mix, func(t *testing.T) {
				t.Parallel()
				checkRestoreEquivalence(t, sc, true)
			})
		}
	}
}
