package simtime

import "testing"

func TestConstants(t *testing.T) {
	if Minute != 60 || Hour != 3600 || Day != 86400 || Week != 604800 {
		t.Fatal("duration constants wrong")
	}
}

func TestHoursRoundTrip(t *testing.T) {
	if Hours(5400) != 1.5 {
		t.Fatalf("Hours(5400) = %g", Hours(5400))
	}
	if FromHours(1.5) != 5400 {
		t.Fatalf("FromHours(1.5) = %d", FromHours(1.5))
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		sec  int64
		want string
	}{
		{56160, "15.6h"},
		{3600, "1.0h"},
		{120, "2m"},
		{59, "59s"},
		{0, "0s"},
		{-7200, "-2.0h"},
	}
	for _, c := range cases {
		if got := Format(c.sec); got != c.want {
			t.Errorf("Format(%d) = %q, want %q", c.sec, got, c.want)
		}
	}
}
