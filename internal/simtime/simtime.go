// Package simtime defines the virtual-time conventions shared by the whole
// simulator: time is int64 seconds from the start of the trace. Using plain
// integers keeps the event engine exact and deterministic (no floating-point
// clock drift) while remaining trivially convertible for reporting.
package simtime

import "fmt"

// Common durations, in seconds.
const (
	Second int64 = 1
	Minute int64 = 60
	Hour   int64 = 3600
	Day    int64 = 24 * Hour
	Week   int64 = 7 * Day
)

// Hours converts seconds to fractional hours.
func Hours(sec int64) float64 { return float64(sec) / float64(Hour) }

// FromHours converts fractional hours to whole seconds (truncated).
func FromHours(h float64) int64 { return int64(h * float64(Hour)) }

// Format renders a duration compactly for reports, e.g. "15.6h", "42m", "30s".
func Format(sec int64) string {
	neg := ""
	if sec < 0 {
		neg = "-"
		sec = -sec
	}
	switch {
	case sec >= Hour:
		return fmt.Sprintf("%s%.1fh", neg, float64(sec)/float64(Hour))
	case sec >= Minute:
		return fmt.Sprintf("%s%.0fm", neg, float64(sec)/float64(Minute))
	default:
		return fmt.Sprintf("%s%ds", neg, sec)
	}
}
