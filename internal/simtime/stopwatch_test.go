package simtime

import "testing"

func TestWallStopwatchAdvances(t *testing.T) {
	stop := Wall.Start()
	// Burn a little time so the measurement is strictly positive even on
	// coarse clocks.
	x := 0
	for i := 0; i < 1000; i++ {
		x += i
	}
	if d := stop(); d < 0 {
		t.Fatalf("wall stopwatch went backwards: %v (x=%d)", d, x)
	}
}

func TestFrozenStopwatchIsZero(t *testing.T) {
	stop := Frozen.Start()
	if d := stop(); d != 0 {
		t.Fatalf("frozen stopwatch reported %v, want 0", d)
	}
	if d := stop(); d != 0 {
		t.Fatalf("frozen stopwatch reported %v on second read, want 0", d)
	}
}
