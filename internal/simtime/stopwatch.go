package simtime

import "time"

// Stopwatch measures real (wall-clock) elapsed time for telemetry — decision
// latency, restore cost — without letting the wall clock anywhere near
// simulation state. Determinism-critical packages are forbidden (and
// schedlint-enforced) from calling time.Now directly; they receive a
// Stopwatch by injection instead, so the only wall-clock call site in the
// tree is Wall below, and tests that need bit-identical runs inject Frozen.
type Stopwatch interface {
	// Start begins a measurement and returns a function that reports the
	// elapsed time since Start.
	Start() func() time.Duration
}

// Wall measures against the host's monotonic clock. This is the default for
// production runs, where decision-latency telemetry should reflect reality.
var Wall Stopwatch = wallStopwatch{}

type wallStopwatch struct{}

func (wallStopwatch) Start() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration { return time.Since(t0) }
}

// Frozen reports zero elapsed time for every measurement. Injecting it makes
// latency telemetry (and anything derived from it) identical across runs and
// hosts.
var Frozen Stopwatch = frozenStopwatch{}

type frozenStopwatch struct{}

func (frozenStopwatch) Start() func() time.Duration {
	return func() time.Duration { return 0 }
}
