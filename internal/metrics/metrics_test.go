package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/job"
)

// completeJob fabricates a completed rigid/od/malleable job for the collector.
func completeJob(id int, class job.Class, submit, start, end int64, size, preempts int) *job.Job {
	var j *job.Job
	switch class {
	case job.Malleable:
		j = job.NewMalleable(id, 0, submit, size, 1, 100, 100, 0)
	case job.OnDemand:
		j = job.NewOnDemand(id, 0, submit, size, 100, 100, 0, job.NoNotice, submit, submit)
	default:
		j = job.NewRigid(id, 0, submit, size, 100, 100, 0, checkpoint.Plan{})
	}
	j.StartTime = start
	j.EndTime = end
	j.State = job.Completed
	j.PreemptCount = preempts
	return j
}

func TestEmptyReport(t *testing.T) {
	c := NewCollector(100)
	r := c.Report()
	if r.Jobs != 0 || r.Makespan != 0 || r.Utilization != 0 {
		t.Fatalf("empty report not zero: %+v", r)
	}
}

func TestWindowAndMakespan(t *testing.T) {
	c := NewCollector(10)
	c.NoteSubmit(100)
	c.NoteSubmit(50) // earlier submit extends the window backwards
	c.NoteComplete(completeJob(1, job.Rigid, 50, 60, 500, 4, 0))
	c.NoteComplete(completeJob(2, job.Rigid, 100, 110, 900, 4, 0))
	r := c.Report()
	if r.Makespan != 850 {
		t.Fatalf("makespan %d, want 850", r.Makespan)
	}
	if r.Jobs != 2 {
		t.Fatalf("jobs %d", r.Jobs)
	}
}

func TestUtilizationLedger(t *testing.T) {
	c := NewCollector(10)
	c.NoteSubmit(0)
	// One job: 100s useful + 10s setup + 5s ckpt + 20s lost on 10 nodes... as
	// node-seconds directly.
	c.AddUsage(job.Usage{Useful: 1000, Setup: 100, Ckpt: 50, Lost: 200})
	c.NoteComplete(completeJob(1, job.Rigid, 0, 0, 1000, 10, 1))
	r := c.Report()
	total := float64(10 * 1000)
	wantUtil := (1000.0 + 100 + 50) / total
	if diff := r.Utilization - wantUtil; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("utilization %g, want %g", r.Utilization, wantUtil)
	}
	if r.Breakdown.Lost != 200/total {
		t.Fatalf("lost fraction %g", r.Breakdown.Lost)
	}
	sum := r.Breakdown.Useful + r.Breakdown.Setup + r.Breakdown.Ckpt +
		r.Breakdown.Lost + r.Breakdown.ReservedIdle + r.Breakdown.Idle
	if sum < 0.999999 || sum > 1.000001 {
		t.Fatalf("breakdown sums to %g", sum)
	}
}

func TestReservedIdleIntegration(t *testing.T) {
	c := NewCollector(10)
	c.NoteSubmit(0)
	c.NoteReserved(0, 4)   // 4 nodes reserved from t=0
	c.NoteReserved(100, 0) // released at t=100 -> 400 node-seconds
	c.NoteReserved(100, 2) // re-reserve 2
	c.NoteReserved(150, 2) // plateau -> +100
	c.NoteComplete(completeJob(1, job.Rigid, 0, 0, 200, 10, 0))
	r := c.Report()
	// 400 + 100 + 2*(200-150) = 600 node-seconds reserved idle of 2000.
	if got := r.Breakdown.ReservedIdle; got != 600.0/2000 {
		t.Fatalf("reserved idle %g, want 0.3", got)
	}
}

func TestPerClassStatsAndPreemptRatios(t *testing.T) {
	c := NewCollector(100)
	c.NoteSubmit(0)
	c.NoteComplete(completeJob(1, job.Rigid, 0, 0, 3600, 4, 1))
	c.NoteComplete(completeJob(2, job.Rigid, 0, 0, 7200, 4, 0))
	c.NoteComplete(completeJob(3, job.Malleable, 0, 0, 1800, 4, 1))
	c.NoteComplete(completeJob(4, job.OnDemand, 0, 0, 900, 4, 0))
	r := c.Report()
	if r.Rigid.Count != 2 || r.Malleable.Count != 1 || r.OnDemand.Count != 1 {
		t.Fatalf("class counts wrong: %+v", r)
	}
	if r.Rigid.PreemptRatio != 0.5 {
		t.Fatalf("rigid preempt ratio %g", r.Rigid.PreemptRatio)
	}
	if r.Malleable.PreemptRatio != 1.0 {
		t.Fatalf("malleable preempt ratio %g", r.Malleable.PreemptRatio)
	}
	if r.Rigid.MeanTurnaroundH != 1.5 {
		t.Fatalf("rigid mean turnaround %g h", r.Rigid.MeanTurnaroundH)
	}
	if r.All.Count != 4 {
		t.Fatalf("all count %d", r.All.Count)
	}
}

func TestInstantStartRates(t *testing.T) {
	c := NewCollector(100)
	c.NoteSubmit(0)
	// Delay 0: strict instant. Delay 120: tolerant instant. Delay 121: not.
	c.NoteComplete(completeJob(1, job.OnDemand, 100, 100, 500, 4, 0))
	c.NoteComplete(completeJob(2, job.OnDemand, 100, 220, 500, 4, 0))
	c.NoteComplete(completeJob(3, job.OnDemand, 100, 221, 600, 4, 0))
	r := c.Report()
	if r.StrictInstantStartRate != 1.0/3 {
		t.Fatalf("strict rate %g", r.StrictInstantStartRate)
	}
	if r.InstantStartRate != 2.0/3 {
		t.Fatalf("tolerant rate %g", r.InstantStartRate)
	}
	if r.MeanStartDelay != (0.0+120+121)/3 {
		t.Fatalf("mean delay %g", r.MeanStartDelay)
	}
}

func TestDecisionLatency(t *testing.T) {
	c := NewCollector(10)
	c.NoteDecision(2 * time.Millisecond)
	c.NoteDecision(4 * time.Millisecond)
	c.NoteSubmit(0)
	c.NoteComplete(completeJob(1, job.Rigid, 0, 0, 100, 4, 0))
	r := c.Report()
	if r.DecisionCount != 2 {
		t.Fatalf("decision count %d", r.DecisionCount)
	}
	if r.MeanDecisionMs < 2.9 || r.MeanDecisionMs > 3.1 {
		t.Fatalf("mean decision %g ms", r.MeanDecisionMs)
	}
	if r.MaxDecisionMs < 3.9 || r.MaxDecisionMs > 4.1 {
		t.Fatalf("max decision %g ms", r.MaxDecisionMs)
	}
}

func TestNoteReservedMonotonicTime(t *testing.T) {
	c := NewCollector(10)
	c.NoteSubmit(0)
	c.NoteReserved(50, 3)
	c.NoteReserved(50, 5) // same instant: just update level
	c.NoteReserved(60, 0) // 5*10 node-seconds
	c.NoteComplete(completeJob(1, job.Rigid, 0, 0, 100, 4, 0))
	r := c.Report()
	want := float64(5*10) / float64(10*100)
	if r.Breakdown.ReservedIdle != want {
		t.Fatalf("reserved idle %g, want %g", r.Breakdown.ReservedIdle, want)
	}
}

func TestAvailabilityLedger(t *testing.T) {
	c := NewCollector(100)
	c.NoteSubmit(0)
	c.NoteDown(10, 5) // 0..10 at level 0
	c.NoteDown(30, 0) // 10..30 at level 5 -> 100 node-seconds
	c.NoteFailure(true)
	c.NoteFailure(true)
	c.NoteFailure(false)
	c.NoteComplete(completeJob(1, job.Rigid, 0, 0, 50, 10, 0))
	r := c.Report()
	if r.DownNodeSeconds != 100 {
		t.Fatalf("DownNodeSeconds = %d, want 100", r.DownNodeSeconds)
	}
	if r.FailuresInjected != 2 || r.FailureMisses != 1 {
		t.Fatalf("failure counters = %d/%d, want 2/1", r.FailuresInjected, r.FailureMisses)
	}
	// 100 down node-seconds over a 100-node, 50-second window.
	if got, want := r.Breakdown.Unavailable, 100.0/(100.0*50.0); got != want {
		t.Fatalf("Breakdown.Unavailable = %g, want %g", got, want)
	}
	snap := c.Snapshot(40)
	if snap.DownNodeSeconds != 100 || snap.Failures != 2 || snap.FailureMisses != 1 {
		t.Fatalf("snapshot availability fields wrong: %+v", snap)
	}
}

func TestCleanReportOmitsAvailabilityFields(t *testing.T) {
	c := NewCollector(10)
	c.NoteSubmit(0)
	c.NoteComplete(completeJob(1, job.Rigid, 0, 0, 20, 4, 0))
	b, err := json.Marshal(c.Report())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"FailuresInjected", "FailureMisses", "DownNodeSeconds", "Unavailable"} {
		if bytes.Contains(b, []byte(field)) {
			t.Fatalf("clean report serializes availability field %s:\n%s", field, b)
		}
	}
}
