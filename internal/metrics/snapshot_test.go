package metrics

import (
	"testing"

	"hybridsched/internal/job"
)

// TestNoteSubmitOutOfOrder: incremental sessions note submissions one at a
// time in trace order, which need not be time order; the window (and the
// reserved-idle integration origin) must land exactly where a single batch
// NoteSubmit of the minimum would have put them.
func TestNoteSubmitOutOfOrder(t *testing.T) {
	batch := NewCollector(100)
	batch.NoteSubmit(50)

	inc := NewCollector(100)
	for _, s := range []int64{400, 50, 300} {
		inc.NoteSubmit(s)
	}

	for _, c := range []*Collector{batch, inc} {
		c.NoteReserved(100, 10) // reserve 10 nodes at t=100
		c.NoteReserved(200, 0)  // release at t=200
	}
	b, i := batch.Snapshot(200), inc.Snapshot(200)
	if b.WindowStart != 50 || i.WindowStart != 50 {
		t.Fatalf("window starts %d / %d, want 50", b.WindowStart, i.WindowStart)
	}
	if b.ReservedIdleNodeSeconds != i.ReservedIdleNodeSeconds {
		t.Fatalf("reserved-idle diverged: batch %d, incremental %d",
			b.ReservedIdleNodeSeconds, i.ReservedIdleNodeSeconds)
	}
	if want := int64(10 * 100); b.ReservedIdleNodeSeconds != want {
		t.Fatalf("reserved-idle %d, want %d", b.ReservedIdleNodeSeconds, want)
	}
}

// TestSnapshotDoesNotDisturbCollector: interleaving snapshots with a run
// must not change the final report.
func TestSnapshotDoesNotDisturbCollector(t *testing.T) {
	run := func(snapshots bool) Report {
		c := NewCollector(64)
		c.NoteSubmit(0)
		c.NoteReserved(10, 32)
		if snapshots {
			c.Snapshot(15)
			c.Snapshot(20)
		}
		c.NoteReserved(30, 0)
		c.AddUsage(job.Usage{Useful: 1000, Setup: 50, Ckpt: 20, Lost: 5})
		j := &job.Job{ID: 1, Class: job.Rigid, SubmitTime: 0, Size: 32,
			StartTime: 10, EndTime: 40, State: job.Completed}
		c.NoteComplete(j)
		if snapshots {
			c.Snapshot(40)
		}
		return c.Report()
	}
	plain, observed := run(false), run(true)
	if plain.Utilization != observed.Utilization ||
		plain.Breakdown != observed.Breakdown ||
		plain.Makespan != observed.Makespan {
		t.Fatalf("snapshots disturbed the report: %+v vs %+v", plain, observed)
	}
}

// TestSnapshotLiveIntegral: the snapshot closes the reserved-idle integral
// at its own instant without mutating the pending state.
func TestSnapshotLiveIntegral(t *testing.T) {
	c := NewCollector(10)
	c.NoteSubmit(0)
	c.NoteReserved(100, 4) // 4 nodes reserved from t=100 on
	s1 := c.Snapshot(150)
	if want := int64(4 * 50); s1.ReservedIdleNodeSeconds != want {
		t.Fatalf("snapshot at 150: reserved-idle %d, want %d", s1.ReservedIdleNodeSeconds, want)
	}
	s2 := c.Snapshot(200)
	if want := int64(4 * 100); s2.ReservedIdleNodeSeconds != want {
		t.Fatalf("snapshot at 200: reserved-idle %d, want %d", s2.ReservedIdleNodeSeconds, want)
	}
	if s1.Completed != 0 || s1.Utilization != 0 {
		t.Fatalf("empty run snapshot: %+v", s1)
	}
}
