package metrics

import (
	"hybridsched/internal/job"
	"hybridsched/internal/snapshot"
)

// EncodeSnapshot serializes every accumulator, including the wall-clock
// decision statistics: they are nondeterministic across runs but cheap to
// carry, and the canonical report comparison zeroes them anyway.
func (c *Collector) EncodeSnapshot(e *snapshot.Enc) {
	e.Int(c.nodes)
	e.Bool(c.haveWindow)
	e.I64(c.winStart)
	e.I64(c.winEnd)
	e.I64(c.usage.Useful)
	e.I64(c.usage.Setup)
	e.I64(c.usage.Ckpt)
	e.I64(c.usage.Lost)
	e.I64(c.reservedIdleNS)
	e.Int(c.lastReserved)
	e.I64(c.lastResTime)
	e.I64(c.downNS)
	e.I64(c.downNSAtEnd)
	e.Int(c.lastDown)
	e.I64(c.lastDownTime)
	e.Int(c.failures)
	e.Int(c.failMisses)
	e.Int(c.failsAtEnd)
	e.Int(c.missesAtEnd)
	e.U32(uint32(len(c.results)))
	for _, r := range c.results {
		e.Int(r.ID)
		e.U8(uint8(r.Class))
		e.Int(r.Size)
		e.I64(r.Submit)
		e.I64(r.Start)
		e.I64(r.End)
		e.I64(r.Turnaround)
		e.I64(r.StartDelay)
		e.Int(r.PreemptCount)
		e.Int(r.ShrinkCount)
	}
	n, mean, m2 := c.decision.State()
	e.Int(n)
	e.F64(mean)
	e.F64(m2)
	e.I64(c.maxDecNS)
}

// DecodeSnapshotCollector reads a collector written by EncodeSnapshot. On
// malformed input it sets the decoder's error and returns nil.
func DecodeSnapshotCollector(d *snapshot.Dec) *Collector {
	c := &Collector{}
	c.nodes = d.Int()
	c.haveWindow = d.Bool()
	c.winStart = d.I64()
	c.winEnd = d.I64()
	c.usage = job.Usage{Useful: d.I64(), Setup: d.I64(), Ckpt: d.I64(), Lost: d.I64()}
	c.reservedIdleNS = d.I64()
	c.lastReserved = d.Int()
	c.lastResTime = d.I64()
	c.downNS = d.I64()
	c.downNSAtEnd = d.I64()
	c.lastDown = d.Int()
	c.lastDownTime = d.I64()
	c.failures = d.Int()
	c.failMisses = d.Int()
	c.failsAtEnd = d.Int()
	c.missesAtEnd = d.Int()
	n := d.Count(73) // 9 × 8-byte fields + 1 class byte per JobResult
	if n > 0 {
		c.results = make([]JobResult, n)
		for i := range c.results {
			c.results[i] = JobResult{
				ID:           d.Int(),
				Class:        job.Class(d.U8()),
				Size:         d.Int(),
				Submit:       d.I64(),
				Start:        d.I64(),
				End:          d.I64(),
				Turnaround:   d.I64(),
				StartDelay:   d.I64(),
				PreemptCount: d.Int(),
				ShrinkCount:  d.Int(),
			}
		}
	}
	c.decision.SetState(d.Int(), d.F64(), d.F64())
	c.maxDecNS = d.I64()
	if d.Err() != nil {
		return nil
	}
	if c.nodes < 1 {
		d.Failf("metrics: invalid node count %d", c.nodes)
		return nil
	}
	return c
}
