// Package metrics collects the user- and system-level measurements the paper
// evaluates (§IV-D): job turnaround time (overall and per class), on-demand
// instant-start rate, per-class preemption ratios, and system utilization
// derived from an exact node-second ledger.
//
// The ledger partitions every node-second of the observation window into
// useful work, setup overhead, checkpoint overhead, computation lost to
// preemption, reserved-but-idle time, and plain idle time. Utilization
// follows the paper's definition — node time that contributed to completed
// execution, excluding computation wasted by preemption.
package metrics

import (
	"time"

	"hybridsched/internal/job"
	"hybridsched/internal/simtime"
	"hybridsched/internal/stats"
)

// InstantStartTolerance is the start delay still counted as an "instant"
// start: the two-minute malleable warning is the one unavoidable delay the
// mechanisms introduce when an on-demand job must wait for vacating nodes.
const InstantStartTolerance = job.WarningPeriod

// JobResult is the per-job outcome recorded at completion.
type JobResult struct {
	ID           int
	Class        job.Class
	Size         int
	Submit       int64
	Start        int64 // first start
	End          int64
	Turnaround   int64
	StartDelay   int64
	PreemptCount int
	ShrinkCount  int
}

// Collector accumulates simulation measurements. Create with NewCollector.
type Collector struct {
	nodes int

	haveWindow bool
	winStart   int64
	winEnd     int64

	usage          job.Usage
	reservedIdleNS int64
	lastReserved   int
	lastResTime    int64

	// Availability extension: out-of-service node-seconds (failed nodes under
	// repair, drained maintenance windows) and injected-failure counters. All
	// zero — and absent from reports — when the availability model is off.
	// The *AtEnd values clip the ledger to the observation window: fault and
	// repair events keep firing (integrating downtime, counting strikes and
	// misses) after the last job completes — the pre-drawn timeline runs to
	// its horizon — but the report only charges what happened inside
	// winStart..winEnd, so Breakdown stays a partition of the window and the
	// counters do not scale with an arbitrary horizon tail. They are
	// re-closed at every completion — virtual time is monotone, so at that
	// instant the live values are exactly the window integrals. The live
	// values also reset when the window opens (see NoteSubmit), dropping
	// anything accrued before the first submission.
	downNS       int64
	downNSAtEnd  int64
	lastDown     int
	lastDownTime int64
	failures     int
	failMisses   int
	failsAtEnd   int
	missesAtEnd  int

	results  []JobResult
	decision stats.Welford
	maxDecNS int64

	// Streaming mode: per-job results are folded into constant-memory
	// accumulators instead of the results slice, so collector memory stays
	// flat across multi-million-job runs. See EnableStreaming. Streaming
	// collectors are never part of a checkpoint — Engine.Snapshot refuses
	// ReleaseCompleted runs outright — so the codec skips all of them.
	//schedlint:snapfield streaming collectors cannot be snapshotted (Engine.Snapshot refuses ReleaseCompleted)
	streaming bool
	//schedlint:snapfield streaming-only accumulator, unreachable in snapshots
	aggAll classAgg
	//schedlint:snapfield streaming-only accumulator, unreachable in snapshots
	aggRigid classAgg
	//schedlint:snapfield streaming-only accumulator, unreachable in snapshots
	aggOD classAgg
	//schedlint:snapfield streaming-only accumulator, unreachable in snapshots
	aggMall classAgg
	//schedlint:snapfield streaming-only accumulator, unreachable in snapshots
	odInstant int
	//schedlint:snapfield streaming-only accumulator, unreachable in snapshots
	odStrict int
	//schedlint:snapfield streaming-only accumulator, unreachable in snapshots
	odStreamed int
	//schedlint:snapfield streaming-only accumulator, unreachable in snapshots
	delaySum float64
}

// classAgg is streaming mode's constant-memory substitute for a per-class
// result slice: single-pass moments plus extrema.
type classAgg struct {
	w         stats.Welford
	min, max  float64
	sum       float64
	preempted int
}

func (a *classAgg) add(t float64, preempted bool) {
	if a.w.N() == 0 || t < a.min {
		a.min = t
	}
	if a.w.N() == 0 || t > a.max {
		a.max = t
	}
	a.w.Add(t)
	a.sum += t
	if preempted {
		a.preempted++
	}
}

// stats renders the accumulator as ClassStats. Rank statistics (median, P90,
// P99) need the full sample and are reported as zero in streaming mode.
func (a *classAgg) stats() ClassStats {
	cs := ClassStats{Count: a.w.N(), PreemptedJobs: a.preempted}
	if cs.Count == 0 {
		return cs
	}
	cs.Turnaround = stats.Summary{
		N: a.w.N(), Mean: a.w.Mean(), Std: a.w.Std(),
		Min: a.min, Max: a.max, Sum: a.sum,
	}
	cs.PreemptRatio = float64(a.preempted) / float64(cs.Count)
	cs.MeanTurnaroundH = cs.Turnaround.Mean / float64(simtime.Hour)
	return cs
}

// NewCollector returns a collector for a system of the given node count.
func NewCollector(nodes int) *Collector {
	return &Collector{nodes: nodes}
}

// NoteSubmit opens (or extends) the observation window at the first
// submission instant. Incremental sessions call it once per submission, in
// any order; the window start tracks the minimum.
func (c *Collector) NoteSubmit(t int64) {
	if !c.haveWindow {
		c.winStart, c.winEnd, c.lastResTime, c.lastDownTime = t, t, t, t
		// Open the availability ledger fresh: downtime and failures from
		// before the first submission (a drain opened at t=0, a timeline
		// head before the trace starts) fall outside the window.
		c.downNS, c.failures, c.failMisses = 0, 0, 0
		c.haveWindow = true
		return
	}
	if t < c.winStart {
		c.winStart = t
		// Before any reservation has been observed the idle integral is
		// empty, so the integration origin moves back with the window; this
		// keeps out-of-order pre-run submissions equivalent to a batch load.
		if c.lastReserved == 0 && c.reservedIdleNS == 0 && t < c.lastResTime {
			c.lastResTime = t
		}
		if c.lastDown == 0 && c.downNS == 0 && t < c.lastDownTime {
			c.lastDownTime = t
		}
	}
}

// NoteReserved integrates reserved-node idle time up to now and records the
// new reservation level. Call it whenever time advances in the simulation.
func (c *Collector) NoteReserved(now int64, reservedNodes int) {
	if now > c.lastResTime {
		c.reservedIdleNS += int64(c.lastReserved) * (now - c.lastResTime)
		c.lastResTime = now
	}
	c.lastReserved = reservedNodes
}

// NoteDown integrates out-of-service node time up to now and records the new
// down-node level. The engine calls it whenever time advances, mirroring
// NoteReserved; with the availability model off the level is always zero and
// the integral stays empty.
func (c *Collector) NoteDown(now int64, downNodes int) {
	if now > c.lastDownTime {
		c.downNS += int64(c.lastDown) * (now - c.lastDownTime)
		c.lastDownTime = now
	}
	c.lastDown = downNodes
}

// downThrough projects the down integral to virtual time t (no mutation).
func (c *Collector) downThrough(t int64) int64 {
	ns := c.downNS
	if t > c.lastDownTime {
		ns += int64(c.lastDown) * (t - c.lastDownTime)
	}
	return ns
}

// NoteFailure records one injected node failure; struck reports whether it
// interrupted a job holding the node (a miss hit a free, reserved, or
// already-down node).
func (c *Collector) NoteFailure(struck bool) {
	if struck {
		c.failures++
	} else {
		c.failMisses++
	}
}

// AddUsage merges an incarnation's node-second usage into the ledger.
func (c *Collector) AddUsage(u job.Usage) { c.usage = addUsage(c.usage, u) }

func addUsage(a, b job.Usage) job.Usage {
	a.Useful += b.Useful
	a.Setup += b.Setup
	a.Ckpt += b.Ckpt
	a.Lost += b.Lost
	return a
}

// EnableStreaming switches the collector to constant-memory aggregation:
// completions fold into running per-class moments instead of the retained
// results slice. Reports from a streaming collector carry no PerJob list and
// no rank statistics (median/P90/P99 read as zero); means, extrema, counts,
// rates, and the node-second ledger are exact. Enable before the first
// completion; results recorded earlier stay in the retained slice and are
// not merged.
func (c *Collector) EnableStreaming() { c.streaming = true }

// NoteComplete records a completed job and extends the observation window.
func (c *Collector) NoteComplete(j *job.Job) {
	if c.streaming {
		t := float64(j.Turnaround())
		pre := j.PreemptCount > 0
		c.aggAll.add(t, pre)
		switch j.Class {
		case job.Rigid:
			c.aggRigid.add(t, pre)
		case job.OnDemand:
			c.aggOD.add(t, pre)
			c.odStreamed++
			c.delaySum += float64(j.StartDelay())
			if j.StartDelay() <= InstantStartTolerance {
				c.odInstant++
			}
			if j.StartDelay() == 0 {
				c.odStrict++
			}
		case job.Malleable:
			c.aggMall.add(t, pre)
		}
		if j.EndTime > c.winEnd {
			c.winEnd = j.EndTime
		}
		c.downNSAtEnd = c.downThrough(c.winEnd)
		c.failsAtEnd, c.missesAtEnd = c.failures, c.failMisses
		return
	}
	r := JobResult{
		ID:           j.ID,
		Class:        j.Class,
		Size:         j.Size,
		Submit:       j.SubmitTime,
		Start:        j.StartTime,
		End:          j.EndTime,
		Turnaround:   j.Turnaround(),
		StartDelay:   j.StartDelay(),
		PreemptCount: j.PreemptCount,
		ShrinkCount:  j.ShrinkCount,
	}
	c.results = append(c.results, r)
	if j.EndTime > c.winEnd {
		c.winEnd = j.EndTime
	}
	c.downNSAtEnd = c.downThrough(c.winEnd)
	c.failsAtEnd, c.missesAtEnd = c.failures, c.failMisses
}

// NoteDecision records the wall-clock latency of one mechanism decision
// (paper Obs. 10: decisions must complete in well under 10-30 s).
func (c *Collector) NoteDecision(d time.Duration) {
	ns := d.Nanoseconds()
	c.decision.Add(float64(ns))
	if ns > c.maxDecNS {
		c.maxDecNS = ns
	}
}

// Results returns the recorded per-job outcomes (shared slice; do not
// modify).
func (c *Collector) Results() []JobResult { return c.results }

// Snapshot is a point-in-time view of the ledger for live observation,
// taken without disturbing the collector. The reserved-idle integral is
// closed exactly at the snapshot instant. Usage — and the Utilization
// derived from it — covers finalized incarnations only: in-flight execution
// is charged when a job completes or is preempted, so early in a run
// Utilization lags the instantaneous busy fraction and converges as jobs
// finish (compare against the cluster's busy-node count for a live
// occupancy figure).
type Snapshot struct {
	Now         int64
	WindowStart int64 // first submission seen (0 if none yet)
	Completed   int   // jobs completed so far

	Usage                   job.Usage // node-second ledger so far
	ReservedIdleNodeSeconds int64

	// Availability extension: out-of-service node-seconds so far and the
	// injected-failure counters (zero with the availability model off).
	DownNodeSeconds int64
	Failures        int
	FailureMisses   int

	// Utilization is the paper's definition — (useful + setup + checkpoint)
	// node-seconds over the window start..Now — accrued from completed and
	// preempted incarnations (running jobs contribute at finalization).
	Utilization float64
}

// Snapshot returns the live measurements as of virtual time now. It never
// mutates the collector, so interleaving snapshots with a run is safe.
func (c *Collector) Snapshot(now int64) Snapshot {
	s := Snapshot{Now: now, Completed: len(c.results), Usage: c.usage,
		ReservedIdleNodeSeconds: c.reservedIdleNS,
		DownNodeSeconds:         c.downNS,
		Failures:                c.failures,
		FailureMisses:           c.failMisses}
	if !c.haveWindow {
		return s
	}
	s.WindowStart = c.winStart
	if now > c.lastResTime {
		s.ReservedIdleNodeSeconds += int64(c.lastReserved) * (now - c.lastResTime)
	}
	if now > c.lastDownTime {
		s.DownNodeSeconds += int64(c.lastDown) * (now - c.lastDownTime)
	}
	if total := float64(c.nodes) * float64(now-c.winStart); total > 0 {
		s.Utilization = (float64(c.usage.Useful) + float64(c.usage.Setup) +
			float64(c.usage.Ckpt)) / total
	}
	return s
}

// ClassStats summarizes turnaround for one job class.
type ClassStats struct {
	Count           int
	Turnaround      stats.Summary // seconds
	PreemptedJobs   int
	PreemptRatio    float64
	MeanTurnaroundH float64
}

// UtilizationBreakdown partitions the window's node-seconds into fractions.
// Unavailable is the availability extension's share (failed nodes under
// repair, drained maintenance windows); it is zero — and omitted from the
// JSON form — when the availability model is off, so canonical reports of
// clean runs are unchanged by its existence.
type UtilizationBreakdown struct {
	Useful       float64
	Setup        float64
	Ckpt         float64
	Lost         float64
	ReservedIdle float64
	Unavailable  float64 `json:",omitempty"`
	Idle         float64
}

// Report is the final set of measurements for one simulation run.
type Report struct {
	Nodes    int
	Jobs     int
	Makespan int64 // seconds, first submit to last completion

	All       ClassStats
	Rigid     ClassStats
	OnDemand  ClassStats
	Malleable ClassStats

	// Utilization per the paper: (useful + setup + checkpoint) node-seconds
	// over the whole window, excluding computation lost to preemption.
	Utilization float64
	Breakdown   UtilizationBreakdown

	// On-demand responsiveness.
	InstantStartRate       float64 // start delay <= InstantStartTolerance
	StrictInstantStartRate float64 // start delay == 0
	MeanStartDelay         float64 // seconds

	// Availability extension (all zero, and omitted from the JSON form, when
	// the availability model is off — clean-run reports stay byte-identical).
	// All three are clipped to the observation window (winStart..winEnd), so
	// they do not depend on how far past the workload the fault timeline's
	// horizon happens to extend.
	FailuresInjected int   `json:",omitempty"` // node failures that struck a job
	FailureMisses    int   `json:",omitempty"` // failures that hit no job
	DownNodeSeconds  int64 `json:",omitempty"` // out-of-service node-seconds

	// Mechanism decision latency (wall clock).
	DecisionCount  int
	MeanDecisionMs float64
	MaxDecisionMs  float64

	// PerJob lists the outcome of every completed job, in completion order.
	PerJob []JobResult
}

// Report computes the final metrics. The reserved-idle integral is closed at
// the window end.
func (c *Collector) Report() Report {
	r := Report{Nodes: c.nodes, Jobs: len(c.results), PerJob: c.results}
	if c.streaming {
		r.Jobs = c.aggAll.w.N()
		r.PerJob = nil
	}
	if !c.haveWindow {
		return r
	}
	c.NoteReserved(c.winEnd, c.lastReserved) // close the integral
	r.Makespan = c.winEnd - c.winStart
	r.FailuresInjected = c.failsAtEnd
	r.FailureMisses = c.missesAtEnd
	r.DownNodeSeconds = c.downNSAtEnd
	if c.streaming {
		r.All = c.aggAll.stats()
		r.Rigid = c.aggRigid.stats()
		r.OnDemand = c.aggOD.stats()
		r.Malleable = c.aggMall.stats()
		if c.odStreamed > 0 {
			r.InstantStartRate = float64(c.odInstant) / float64(c.odStreamed)
			r.StrictInstantStartRate = float64(c.odStrict) / float64(c.odStreamed)
			r.MeanStartDelay = c.delaySum / float64(c.odStreamed)
		}
		c.finishReport(&r)
		return r
	}

	turn := make([]float64, 0, len(c.results))
	var turnR, turnO, turnM []float64
	var preR, preM, preO, preAll int
	var odInstant, odStrict, odCount int
	var delaySum float64
	for _, res := range c.results {
		t := float64(res.Turnaround)
		turn = append(turn, t)
		switch res.Class {
		case job.Rigid:
			turnR = append(turnR, t)
			if res.PreemptCount > 0 {
				preR++
			}
		case job.OnDemand:
			turnO = append(turnO, t)
			odCount++
			delaySum += float64(res.StartDelay)
			if res.StartDelay <= InstantStartTolerance {
				odInstant++
			}
			if res.StartDelay == 0 {
				odStrict++
			}
			if res.PreemptCount > 0 {
				preO++
			}
		case job.Malleable:
			turnM = append(turnM, t)
			if res.PreemptCount > 0 {
				preM++
			}
		}
		if res.PreemptCount > 0 {
			preAll++
		}
	}
	r.All = classStats(turn, preAll)
	r.Rigid = classStats(turnR, preR)
	r.OnDemand = classStats(turnO, preO)
	r.Malleable = classStats(turnM, preM)

	if odCount > 0 {
		r.InstantStartRate = float64(odInstant) / float64(odCount)
		r.StrictInstantStartRate = float64(odStrict) / float64(odCount)
		r.MeanStartDelay = delaySum / float64(odCount)
	}
	c.finishReport(&r)
	return r
}

// finishReport fills the sample-independent tail of a report: the node-second
// utilization breakdown and decision-latency stats.
func (c *Collector) finishReport(r *Report) {
	total := float64(c.nodes) * float64(r.Makespan)
	if total > 0 {
		u := c.usage
		r.Utilization = (float64(u.Useful) + float64(u.Setup) + float64(u.Ckpt)) / total
		r.Breakdown = UtilizationBreakdown{
			Useful:       float64(u.Useful) / total,
			Setup:        float64(u.Setup) / total,
			Ckpt:         float64(u.Ckpt) / total,
			Lost:         float64(u.Lost) / total,
			ReservedIdle: float64(c.reservedIdleNS) / total,
			Unavailable:  float64(c.downNSAtEnd) / total,
		}
		r.Breakdown.Idle = 1 - r.Breakdown.Useful - r.Breakdown.Setup -
			r.Breakdown.Ckpt - r.Breakdown.Lost - r.Breakdown.ReservedIdle -
			r.Breakdown.Unavailable
	}

	r.DecisionCount = c.decision.N()
	r.MeanDecisionMs = c.decision.Mean() / 1e6
	r.MaxDecisionMs = float64(c.maxDecNS) / 1e6
}

func classStats(turn []float64, preempted int) ClassStats {
	cs := ClassStats{Count: len(turn), PreemptedJobs: preempted}
	cs.Turnaround = stats.Summarize(turn)
	if cs.Count > 0 {
		cs.PreemptRatio = float64(preempted) / float64(cs.Count)
		cs.MeanTurnaroundH = cs.Turnaround.Mean / float64(simtime.Hour)
	}
	return cs
}
