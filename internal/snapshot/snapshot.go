// Package snapshot provides the binary format primitives for engine
// checkpoints: a little-endian, fixed-width encoder, a bounds-checked decoder
// that reports malformed input as errors (never panics), and a versioned,
// length-prefixed, CRC-checked frame that wraps every serialized payload.
//
// The package is deliberately domain-free: it knows nothing about engines,
// jobs, or clusters. Each domain package (sim, cluster, metrics, core, ...)
// serializes its own state through an Enc/Dec pair, and the top-level writers
// (Session.Checkpoint, the sweep runner) wrap the result in a frame. Nested
// frames are legal and used: a session checkpoint is a frame whose payload
// embeds the engine's own frame.
//
// Determinism contract: encoding the same logical state always yields the
// same bytes. Nothing here consults maps in iteration order, wall clocks, or
// pointer values; callers must likewise serialize map-shaped state in sorted
// key order.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic identifies a snapshot frame. Four bytes, never versioned — version
// skew is expressed in the frame's version field so old readers can say
// "snapshot from a newer writer" instead of "not a snapshot".
const Magic = "HSNP"

// frameOverhead is the byte size of magic + version + length + CRC.
const frameOverhead = 4 + 4 + 8 + 4

// maxFrameSize bounds a declared payload length. It exists to fail fast on
// corrupt length fields; real snapshots are far smaller.
const maxFrameSize = 1 << 32

// Enc accumulates a payload. The zero value is ready to use. All integers are
// little-endian and fixed-width: snapshots trade a few bytes for a format
// with no data-dependent branching, which keeps encode/decode trivially
// deterministic.
type Enc struct {
	buf []byte
}

// Bytes returns the accumulated payload. The slice aliases the encoder's
// buffer; encode everything before framing it.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a fixed 32-bit value.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed 64-bit value.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a signed 64-bit value (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as 64 bits.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by its IEEE-754 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// U64s appends a length-prefixed slice of 64-bit values.
func (e *Enc) U64s(vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// I64s appends a length-prefixed slice of signed 64-bit values.
func (e *Enc) I64s(vs []int64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// Ints appends a length-prefixed slice of ints.
func (e *Enc) Ints(vs []int) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.Int(v)
	}
}

// Dec decodes a payload produced by Enc. It is sticky: the first malformed
// read records an error, every subsequent read returns zero values, and the
// caller checks Err (or Done) once at the end of a section. Dec never panics
// and never reads past the payload, no matter how corrupt the input is.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Done returns an error if decoding failed or if unread bytes remain — a
// trailing-garbage check for the end of a complete payload.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("snapshot: %d trailing bytes after payload", len(d.buf)-d.off)
	}
	return nil
}

// Fail records err (if no earlier error is pending) and returns it. Domain
// decoders use it to surface semantic validation failures through the same
// sticky-error channel as malformed bytes.
func (d *Dec) Fail(err error) error {
	if d.err == nil {
		d.err = err
	}
	return d.err
}

// Failf is Fail with formatting.
func (d *Dec) Failf(format string, args ...any) error {
	return d.Fail(fmt.Errorf("snapshot: "+format, args...))
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.err = fmt.Errorf("snapshot: truncated payload (want %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool, rejecting values other than 0 and 1.
func (d *Dec) Bool() bool {
	v := d.U8()
	if v > 1 {
		d.Failf("invalid bool byte %d", v)
		return false
	}
	return v == 1
}

// U32 reads a fixed 32-bit value.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed 64-bit value.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit value.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as 64 bits.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Count reads a u32 element count and validates it against the bytes that
// remain, assuming each element occupies at least elemMin bytes. This rejects
// allocation-bomb counts in corrupt input before any slice is allocated.
func (d *Dec) Count(elemMin int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if int64(n)*int64(elemMin) > int64(d.Remaining()) {
		d.Failf("count %d exceeds remaining payload (%d bytes)", n, d.Remaining())
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Count(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a length-prefixed byte slice. The result is a copy.
func (d *Dec) Blob() []byte {
	n := d.Count(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// U64s reads a length-prefixed slice of 64-bit values.
func (d *Dec) U64s() []uint64 {
	n := d.Count(8)
	if n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = d.U64()
	}
	return vs
}

// I64s reads a length-prefixed slice of signed 64-bit values.
func (d *Dec) I64s() []int64 {
	n := d.Count(8)
	if n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.I64()
	}
	return vs
}

// Ints reads a length-prefixed slice of ints.
func (d *Dec) Ints() []int {
	n := d.Count(8)
	if n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = d.Int()
	}
	return vs
}

// Frame wraps payload in the versioned on-disk format:
//
//	magic "HSNP" | u32 version | u64 payload length | payload | u32 CRC-32 (IEEE) of payload
func Frame(version uint32, payload []byte) []byte {
	out := make([]byte, 0, frameOverhead+len(payload))
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out
}

// Unframe validates a complete frame held in memory and returns its payload
// (aliasing data) and version. It rejects bad magic, truncation, trailing
// garbage, and CRC mismatches.
func Unframe(data []byte) (payload []byte, version uint32, err error) {
	if len(data) < frameOverhead {
		return nil, 0, fmt.Errorf("snapshot: frame truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != Magic {
		return nil, 0, fmt.Errorf("snapshot: bad magic %q", data[:4])
	}
	version = binary.LittleEndian.Uint32(data[4:8])
	n := binary.LittleEndian.Uint64(data[8:16])
	if n > maxFrameSize || int(n) != len(data)-frameOverhead {
		return nil, 0, fmt.Errorf("snapshot: frame length %d does not match %d payload bytes", n, len(data)-frameOverhead)
	}
	payload = data[16 : 16+int(n)]
	sum := binary.LittleEndian.Uint32(data[16+int(n):])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, 0, fmt.Errorf("snapshot: CRC mismatch (stored %08x, computed %08x)", sum, got)
	}
	return payload, version, nil
}

// Write frames payload and writes it to w.
func Write(w io.Writer, version uint32, payload []byte) error {
	_, err := w.Write(Frame(version, payload))
	return err
}

// Read consumes a complete frame from r and returns its payload and version.
// A declared length larger than the data actually present yields a truncation
// error rather than a huge allocation.
func Read(r io.Reader) (payload []byte, version uint32, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("snapshot: reading frame header: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, 0, fmt.Errorf("snapshot: bad magic %q", hdr[:4])
	}
	version = binary.LittleEndian.Uint32(hdr[4:8])
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > maxFrameSize {
		return nil, 0, fmt.Errorf("snapshot: implausible frame length %d", n)
	}
	// Copy through a growing buffer so a corrupt length field cannot force a
	// single huge allocation: growth stops at EOF.
	var buf bytes.Buffer
	copied, err := io.Copy(&buf, io.LimitReader(r, int64(n)+4))
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot: reading frame payload: %w", err)
	}
	if uint64(copied) != n+4 {
		return nil, 0, fmt.Errorf("snapshot: frame truncated (want %d payload bytes, have %d)", n+4, copied)
	}
	body := buf.Bytes()
	payload = body[:n]
	sum := binary.LittleEndian.Uint32(body[n:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, 0, fmt.Errorf("snapshot: CRC mismatch (stored %08x, computed %08x)", sum, got)
	}
	return payload, version, nil
}
