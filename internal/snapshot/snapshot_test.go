package snapshot

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var e Enc
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 62)
	e.I64(-42)
	e.Int(123456789)
	e.F64(3.5e-9)
	e.String("hello")
	e.Blob([]byte{1, 2, 3})
	e.U64s([]uint64{9, 8})
	e.I64s([]int64{-1, 0, 1})
	e.Ints([]int{5})

	frame := Frame(3, e.Bytes())
	payload, ver, err := Unframe(frame)
	if err != nil || ver != 3 {
		t.Fatalf("Unframe: ver=%d err=%v", ver, err)
	}
	d := NewDec(payload)
	if d.U8() != 7 || !d.Bool() || d.Bool() || d.U32() != 0xdeadbeef || d.U64() != 1<<62 ||
		d.I64() != -42 || d.Int() != 123456789 || d.F64() != 3.5e-9 || d.String() != "hello" {
		t.Fatalf("scalar round-trip mismatch (err=%v)", d.Err())
	}
	if b := d.Blob(); !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("Blob = %v", b)
	}
	if v := d.U64s(); len(v) != 2 || v[0] != 9 || v[1] != 8 {
		t.Fatalf("U64s = %v", v)
	}
	if v := d.I64s(); len(v) != 3 || v[0] != -1 || v[2] != 1 {
		t.Fatalf("I64s = %v", v)
	}
	if v := d.Ints(); len(v) != 1 || v[0] != 5 {
		t.Fatalf("Ints = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}

	// The io path must agree with the in-memory path.
	got, ver, err := Read(bytes.NewReader(frame))
	if err != nil || ver != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("Read: ver=%d err=%v", ver, err)
	}
}

func TestUnframeRejectsCorruption(t *testing.T) {
	var e Enc
	e.String("payload under test")
	frame := Frame(1, e.Bytes())

	if _, _, err := Unframe(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, _, err := Unframe(frame[:10]); err == nil {
		t.Fatal("header-only frame accepted")
	}
	if _, _, err := Unframe(nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, _, err := Unframe(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	for _, i := range []int{16, len(frame) - 5, len(frame) - 1} {
		flip := append([]byte(nil), frame...)
		flip[i] ^= 0x40
		if _, _, err := Unframe(flip); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	long := append([]byte(nil), frame...)
	long = append(long, 0)
	if _, _, err := Unframe(long); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, _, err := Read(bytes.NewReader(frame[:20])); err == nil {
		t.Fatal("Read accepted truncated stream")
	}
}

func TestDecSticky(t *testing.T) {
	d := NewDec([]byte{1, 2})
	_ = d.U64() // truncated
	if d.Err() == nil {
		t.Fatal("want truncation error")
	}
	// Subsequent reads must be inert zero values, never panics.
	if d.U8() != 0 || d.String() != "" || d.Blob() != nil || d.Ints() != nil {
		t.Fatal("sticky decoder returned non-zero after error")
	}
	if d.Done() == nil {
		t.Fatal("Done must report the sticky error")
	}
}

func TestCountRejectsAllocationBombs(t *testing.T) {
	var e Enc
	e.U32(1 << 30) // count far beyond payload
	d := NewDec(e.Bytes())
	if n := d.Count(8); n != 0 || d.Err() == nil {
		t.Fatalf("Count = %d, err = %v; want rejection", n, d.Err())
	}
	d2 := NewDec(e.Bytes())
	if v := d2.U64s(); v != nil || d2.Err() == nil {
		t.Fatal("U64s must reject bomb counts before allocating")
	}
}
