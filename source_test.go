package hybridsched

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestSubmitSourceGoldenEquivalence: streaming Synthetic(cfg) into a Session
// and Run() must reproduce Simulate(cfg, GenerateWorkload(cfg)) byte for
// byte (JSON, wall-clock fields excluded), for every mechanism under every
// Table III notice mix — the records are drawn lazily, yet the simulation
// must be indistinguishable from a batch load.
func TestSubmitSourceGoldenEquivalence(t *testing.T) {
	mixes := []struct {
		name string
		mix  NoticeMix
	}{{"W1", W1}, {"W2", W2}, {"W3", W3}, {"W4", W4}, {"W5", W5}}
	for _, m := range mixes {
		wcfg := equivWorkload(m.mix)
		records, err := GenerateWorkload(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, mech := range Mechanisms() {
			t.Run(m.name+"/"+mech, func(t *testing.T) {
				legacy, err := Simulate(SimulationConfig{Nodes: 512, Mechanism: mech}, records)
				if err != nil {
					t.Fatal(err)
				}
				s, err := NewSession(WithNodes(512), WithMechanism(mech))
				if err != nil {
					t.Fatal(err)
				}
				if err := s.SubmitSource(Synthetic(wcfg)); err != nil {
					t.Fatal(err)
				}
				got, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				if canonicalJSON(t, got) != canonicalJSON(t, legacy) {
					t.Errorf("streamed-source report differs from Simulate")
				}
			})
		}
	}
}

// TestSubmitSourceEquivalentToSubmitLoop: a CSV source must behave exactly
// like submitting the same records by hand, including through RunUntil
// checkpoints.
func TestSubmitSourceEquivalentToSubmitLoop(t *testing.T) {
	records, err := GenerateWorkload(equivWorkload(W5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, records); err != nil {
		t.Fatal(err)
	}

	batch, err := NewSession(WithNodes(512))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := batch.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := batch.Run()
	if err != nil {
		t.Fatal(err)
	}

	stream, err := NewSession(WithNodes(512), WithSource(FromCSV(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	for hour := int64(1); ; hour++ {
		if err := stream.RunUntil(hour * Hour); err != nil {
			t.Fatal(err)
		}
		snap := stream.Snapshot()
		if snap.Submitted == len(records) && snap.Completed == snap.Submitted {
			break
		}
	}
	got, err := stream.Run()
	if err != nil {
		t.Fatal(err)
	}
	if canonicalJSON(t, got) != canonicalJSON(t, want) {
		t.Error("CSV-source session differs from submit-loop session")
	}
}

// countingReader counts the bytes drawn through it.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// TestFromCSVStreamsLazily: a session over a multi-week CSV trace must not
// read the file ahead of virtual time — after advancing one day into a
// four-week trace, only a sliver of the bytes may have been consumed.
func TestFromCSVStreamsLazily(t *testing.T) {
	records, err := GenerateWorkload(WorkloadConfig{Seed: 2, Weeks: 4, Nodes: 512,
		MinJobSize: 16, SizeBuckets: []int{16, 32, 64}, SizeWeights: []float64{0.5, 0.3, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	total := buf.Len()
	cr := &countingReader{r: &buf}
	s, err := NewSession(WithNodes(512), WithSource(FromCSV(cr)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(24 * Hour); err != nil {
		t.Fatal(err)
	}
	// One day plus the one-hour lookahead is ~3.7% of the four-week span;
	// allow generous slack for the CSV reader's internal buffering.
	if limit := total / 4; cr.n > limit {
		t.Errorf("read %d of %d bytes after one simulated day of four weeks (limit %d): not streaming",
			cr.n, total, limit)
	}
	if cr.n == 0 {
		t.Error("no bytes read after a simulated day; source not consumed")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if cr.n != total {
		t.Errorf("full run consumed %d of %d bytes", cr.n, total)
	}
}

// TestSubmitSourceMultiple: two attached sources interleave in time order
// and drain completely.
func TestSubmitSourceMultiple(t *testing.T) {
	early := []Record{
		{ID: 1, Class: Rigid, Submit: 0, Size: 64, MinSize: 64, Work: 600, Estimate: 900},
		{ID: 2, Class: Rigid, Submit: 7200, Size: 64, MinSize: 64, Work: 600, Estimate: 900},
	}
	late := []Record{
		{ID: 3, Class: Rigid, Submit: 3600, Size: 64, MinSize: 64, Work: 600, Estimate: 900},
	}
	s, err := NewSession(WithNodes(512))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitSource(FromRecords(early)); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitSource(FromRecords(late)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 3 {
		t.Errorf("completed %d jobs, want 3", rep.Jobs)
	}
}

// TestSubmitSourceNil and out-of-order input surface errors instead of
// corrupting the run.
func TestSubmitSourceErrors(t *testing.T) {
	s, err := NewSession(WithNodes(512))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitSource(nil); err == nil {
		t.Error("nil source should error")
	}

	// An unsorted source trips the engine's before-the-clock guard once its
	// late record surfaces after the clock has passed it.
	unsorted := []Record{
		{ID: 1, Class: Rigid, Submit: 8 * Hour, Size: 64, MinSize: 64, Work: 600, Estimate: 900},
		{ID: 2, Class: Rigid, Submit: 0, Size: 64, MinSize: 64, Work: 600, Estimate: 900},
	}
	s2, err := NewSession(WithNodes(512), WithSource(FromRecords(unsorted)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(); err == nil {
		t.Error("out-of-order source should fail the run")
	}

	// The same input through SortSource succeeds.
	s3, err := NewSession(WithNodes(512), WithSource(SortSource(FromRecords(unsorted))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Run(); err != nil {
		t.Errorf("sorted source failed: %v", err)
	}

	// A failing source surfaces its error from Run.
	s4, err := NewSession(WithNodes(512), WithSource(FromCSV(strings.NewReader("junk"))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s4.Run(); err == nil || !strings.Contains(err.Error(), "source") {
		t.Errorf("source parse failure not surfaced: %v", err)
	}
}

// TestRelabeledSWFThroughSession: the paper's §IV-A trick end to end — an
// all-rigid SWF import relabeled to the hybrid classes runs under a
// mechanism and produces on-demand jobs.
func TestRelabeledSWFThroughSession(t *testing.T) {
	records, err := GenerateWorkload(equivWorkload(W5))
	if err != nil {
		t.Fatal(err)
	}
	var swf bytes.Buffer
	if err := WriteSWF(&swf, records); err != nil {
		t.Fatal(err)
	}
	imported, sum, err := ReadSWFSummary(bytes.NewReader(swf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsRead != len(imported) {
		t.Fatalf("summary jobs read %d != %d", sum.JobsRead, len(imported))
	}
	rule := PaperRelabel()
	rule.OnDemandMaxSize = 128 // equiv workload tops out at 128-node jobs
	s, err := NewSession(WithNodes(512),
		WithSource(Relabel(FromSWF(bytes.NewReader(swf.Bytes())), rule)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(imported) {
		t.Errorf("ran %d jobs, imported %d", rep.Jobs, len(imported))
	}
	if rep.OnDemand.Count == 0 || rep.Malleable.Count == 0 {
		t.Errorf("relabel produced no hybrid classes: od=%d mall=%d",
			rep.OnDemand.Count, rep.Malleable.Count)
	}
}
