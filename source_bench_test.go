package hybridsched

import (
	"bytes"
	"testing"
)

// benchWorkload is the trace the source benchmarks stream: one week on the
// full Theta system, a few thousand records.
var benchWorkload = WorkloadConfig{Seed: 1, Weeks: 1}

// benchTrace materializes the benchmark workload once per format.
func benchTrace(b *testing.B) []Record {
	b.Helper()
	records, err := GenerateWorkload(benchWorkload)
	if err != nil {
		b.Fatal(err)
	}
	return records
}

// drainRate drains src and reports records/sec for the benchmark.
func drainRate(b *testing.B, makeSrc func() Source) {
	b.Helper()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := ReadAllSource(makeSrc())
		if err != nil {
			b.Fatal(err)
		}
		total += len(n)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs, "records/sec")
	}
}

func BenchmarkSourceSynthetic(b *testing.B) {
	b.ReportAllocs()
	drainRate(b, func() Source { return Synthetic(benchWorkload) })
}

func BenchmarkSourceCSV(b *testing.B) {
	b.ReportAllocs()
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, benchTrace(b)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	drainRate(b, func() Source { return FromCSV(bytes.NewReader(data)) })
}

func BenchmarkSourceSWF(b *testing.B) {
	b.ReportAllocs()
	var buf bytes.Buffer
	if err := WriteSWF(&buf, benchTrace(b)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	drainRate(b, func() Source { return FromSWF(bytes.NewReader(data)) })
}

func BenchmarkSourceMerge3(b *testing.B) {
	b.ReportAllocs()
	records := benchTrace(b)
	var csvBuf, swfBuf bytes.Buffer
	if err := WriteTraceCSV(&csvBuf, records); err != nil {
		b.Fatal(err)
	}
	if err := WriteSWF(&swfBuf, records); err != nil {
		b.Fatal(err)
	}
	csvData, swfData := csvBuf.Bytes(), swfBuf.Bytes()
	cfg := benchWorkload
	cfg.Seed = 2
	drainRate(b, func() Source {
		return Merge(
			FromCSV(bytes.NewReader(csvData)),
			FromSWF(bytes.NewReader(swfData)),
			Synthetic(cfg),
		)
	})
}
