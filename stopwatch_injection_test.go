package hybridsched

import (
	"testing"

	"hybridsched/internal/checkpoint"
	"hybridsched/internal/core"
	"hybridsched/internal/metrics"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"
)

// TestFrozenStopwatchZeroesDecisionLatency pins the stopwatch injection
// seam: decision-latency telemetry is the one engine output that reads the
// host clock, and injecting simtime.Frozen must flatten it to zero without
// changing anything else about the run.
func TestFrozenStopwatchZeroesDecisionLatency(t *testing.T) {
	recs, err := workload.Generate(workload.Config{
		Seed: 1, Nodes: 256, Weeks: 1,
		MinJobSize:  8,
		SizeBuckets: []int{8, 16},
		SizeWeights: []float64{0.7, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(sw simtime.Stopwatch) metrics.Report {
		jobs := trace.Materialize(recs, func(size int) checkpoint.Plan {
			return checkpoint.NewPlan(size, 24*3600, 1)
		})
		m, _ := core.ByName("CUA&SPAA", core.DefaultConfig())
		e, err := sim.New(sim.Config{Nodes: 256, Stopwatch: sw}, jobs, m)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rep := run(simtime.Frozen)
	if rep.DecisionCount == 0 {
		t.Fatal("workload produced no on-demand decisions; test is vacuous")
	}
	if rep.MeanDecisionMs != 0 || rep.MaxDecisionMs != 0 {
		t.Fatalf("frozen stopwatch leaked latency: mean=%v max=%v",
			rep.MeanDecisionMs, rep.MaxDecisionMs)
	}

	wrep := run(simtime.Wall)
	if wrep.DecisionCount != rep.DecisionCount {
		t.Fatalf("stopwatch choice changed the schedule: %d vs %d decisions",
			wrep.DecisionCount, rep.DecisionCount)
	}
}
