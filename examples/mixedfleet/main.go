// Mixed fleet: compose a hybrid workload from two worlds — a rigid batch
// trace imported from SWF (scaled up to raise its load) merged with
// synthetic on-demand bursts — and stream the blend into a live Session,
// printing per-class progress and instant-start rates as virtual time
// advances. This is the capability/capacity blend the related work runs,
// expressed in a dozen lines of source combinators:
//
//	swf   := Scale(FromSWF(...), 1.25)            // batch backbone, +25% load
//	burst := Filter(Synthetic(cfg), on-demand)    // urgent arrivals
//	session.SubmitSource(Merge(swf, burst))       // one time-ordered stream
//
// The SWF trace is synthesized on the fly so the example runs out of the
// box; point -swf at a real Parallel Workloads Archive log to replay it.
//
//	go run ./examples/mixedfleet
//	go run ./examples/mixedfleet -swf theta.swf -mech CUP\&SPAA
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"hybridsched"
)

func main() {
	var (
		swfPath = flag.String("swf", "", "SWF trace to import (empty = synthesize a demo trace)")
		mech    = flag.String("mech", "CUA&SPAA", "scheduling mechanism")
		nodes   = flag.Int("nodes", 1024, "system size")
	)
	flag.Parse()

	// The rigid backbone: an SWF import. SWF carries no job classes — every
	// job arrives rigid — so the import summary says exactly what happened.
	var swfSrc hybridsched.Source
	if *swfPath != "" {
		f, err := os.Open(*swfPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		swfSrc = hybridsched.FromSWF(f)
	} else {
		records, err := hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{
			Seed: 7, Weeks: 1, Nodes: *nodes,
			MinJobSize:  32,
			SizeBuckets: []int{32, 64, 128, 256},
			SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
		})
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if err := hybridsched.WriteSWF(&buf, records); err != nil {
			log.Fatal(err)
		}
		imported, sum, err := hybridsched.ReadSWFSummary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("swf import: %s\n", sum)
		swfSrc = hybridsched.FromRecords(imported)
	}

	// Scale the batch backbone: the same jobs in 1/1.25 of the time (+25%
	// offered load), the knob for studying a fleet under pressure.
	backbone := hybridsched.Scale(swfSrc, 1.25)

	// The urgent side: synthetic on-demand bursts, filtered out of a
	// generated hybrid workload (keeping its bursty arrival sessions).
	bursts := hybridsched.Filter(
		hybridsched.Synthetic(hybridsched.WorkloadConfig{
			Seed: 11, Weeks: 1, Nodes: *nodes,
			Mix:         hybridsched.W2, // mostly accurate advance notice
			MinJobSize:  32,
			SizeBuckets: []int{32, 64, 128},
			SizeWeights: []float64{0.5, 0.3, 0.2},
		}),
		func(r hybridsched.Record) bool { return r.Class == hybridsched.OnDemand },
	)

	// Merge interleaves the two streams in time order and renumbers job IDs;
	// the session draws records lazily as its clock advances.
	s, err := hybridsched.NewSession(
		hybridsched.WithNodes(*nodes),
		hybridsched.WithMechanism(*mech),
		hybridsched.WithSource(hybridsched.Merge(backbone, bursts)),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mixed fleet on %d nodes under %s\n", *nodes, *mech)
	fmt.Println("  t        submitted  running  queued  util%   od-instant%")
	for day := int64(1); ; day++ {
		if err := s.RunUntil(day * 24 * hybridsched.Hour); err != nil {
			log.Fatal(err)
		}
		snap := s.Snapshot()
		rep := s.Report()
		instant := 100 * rep.InstantStartRate
		fmt.Printf("  %-7s  %9d  %7d  %6d  %5.1f  %10.1f\n",
			hybridsched.FormatDuration(snap.Now), snap.Submitted,
			len(snap.Running), snap.QueueDepth, 100*snap.Metrics.Utilization, instant)
		if snap.Submitted > 0 && snap.Completed == snap.Submitted {
			break
		}
	}

	rep, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("classes: rigid %d, on-demand %d, malleable %d\n",
		rep.Rigid.Count, rep.OnDemand.Count, rep.Malleable.Count)
	fmt.Printf("on-demand instant start: %.1f%% (strict %.1f%%, mean delay %.0fs)\n",
		100*rep.InstantStartRate, 100*rep.StrictInstantStartRate, rep.MeanStartDelay)
	fmt.Printf("per-class turnaround: rigid %.1fh, on-demand %.1fh, malleable %.1fh\n",
		rep.Rigid.MeanTurnaroundH, rep.OnDemand.MeanTurnaroundH, rep.Malleable.MeanTurnaroundH)
}
