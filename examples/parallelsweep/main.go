// Parallelsweep: run the full mechanism comparison — all seven schedulers
// over several independently generated traces — as one declarative grid
// executed across every CPU core, then emit the averaged comparison and the
// per-cell CSV. This is the library-level counterpart of
// `expdriver -exp fig6`: grids are data, the runner supplies the
// parallelism, and the output is bit-identical for any worker count.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"hybridsched"
)

func main() {
	const seedsPerMech = 3

	// The grid: mechanisms × seeds. Every cell with the same seed shares one
	// generated trace, so the generator runs seedsPerMech times, not
	// len(specs) times.
	var specs []hybridsched.SweepSpec
	for _, mech := range hybridsched.Mechanisms() {
		for seed := int64(1); seed <= seedsPerMech; seed++ {
			specs = append(specs, hybridsched.SweepSpec{
				Label: mech,
				Workload: hybridsched.WorkloadConfig{
					Seed:        seed,
					Weeks:       1,
					Nodes:       512,
					MinJobSize:  16,
					SizeBuckets: []int{16, 32, 64, 128, 256},
					SizeWeights: []float64{0.3, 0.25, 0.2, 0.15, 0.1},
				},
				Sim: hybridsched.SimulationConfig{Nodes: 512, Mechanism: mech},
			})
		}
	}

	workers := runtime.NumCPU()
	fmt.Fprintf(os.Stderr, "sweep: %d cells on %d workers\n", len(specs), workers)
	start := time.Now()
	report, err := hybridsched.RunSweep(specs, hybridsched.SweepOptions{
		Workers:  workers,
		Progress: os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: done in %s\n\n", time.Since(start).Round(time.Millisecond))

	// Average each mechanism's seeds by hand to print a compact comparison;
	// report.WriteCSV / WriteJSON emit the raw per-cell rows.
	type agg struct {
		n                   int
		turn, util, instant float64
		preemptR, preemptM  float64
	}
	sums := map[string]*agg{}
	for _, res := range report.Results {
		if res.Err != "" {
			log.Fatalf("cell %s failed: %s", res.Spec.Label, res.Err)
		}
		a := sums[res.Spec.Label]
		if a == nil {
			a = &agg{}
			sums[res.Spec.Label] = a
		}
		a.n++
		a.turn += res.Report.All.MeanTurnaroundH
		a.util += res.Report.Utilization
		a.instant += res.Report.InstantStartRate
		a.preemptR += res.Report.Rigid.PreemptRatio
		a.preemptM += res.Report.Malleable.PreemptRatio
	}
	fmt.Printf("%-10s %10s %8s %10s %14s\n", "mechanism", "turn (h)", "util", "instant", "preempt R/M")
	for _, mech := range hybridsched.Mechanisms() {
		a := sums[mech]
		n := float64(a.n)
		fmt.Printf("%-10s %10.1f %7.1f%% %9.1f%% %6.2f%%/%.2f%%\n",
			mech, a.turn/n, 100*a.util/n, 100*a.instant/n, 100*a.preemptR/n, 100*a.preemptM/n)
	}

	// The raw cells, deterministic across worker counts.
	f, err := os.Create("sweep.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\nper-cell rows written to sweep.csv\n")
}
