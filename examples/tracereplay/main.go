// Trace replay: drive the simulator from a trace file (native CSV or SWF)
// and export per-job outcomes for downstream analysis — the workflow for
// studying a site's own workload under the hybrid mechanisms.
//
//	go run ./examples/tracereplay -trace mytrace.csv -mech CUP\&SPAA -o results.csv
//
// Without -trace, a demonstration workload is generated and written to
// trace.csv first, so the example is runnable out of the box.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"hybridsched"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace (csv schema; empty = generate demo trace.csv)")
		swf       = flag.Bool("swf", false, "input is Standard Workload Format")
		mech      = flag.String("mech", "CUA&SPAA", "scheduling mechanism")
		nodes     = flag.Int("nodes", 1024, "system size")
		out       = flag.String("o", "results.csv", "per-job results file")
	)
	flag.Parse()

	var records []hybridsched.Record
	var err error
	switch {
	case *tracePath == "":
		records, err = hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{
			Seed:        3,
			Weeks:       1,
			Nodes:       *nodes,
			MinJobSize:  32,
			SizeBuckets: []int{32, 64, 128, 256},
			SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
		})
		if err == nil {
			f, ferr := os.Create("trace.csv")
			if ferr != nil {
				log.Fatal(ferr)
			}
			err = hybridsched.WriteTraceCSV(f, records)
			f.Close()
			fmt.Println("wrote demonstration workload to trace.csv")
		}
	case *swf:
		var f *os.File
		if f, err = os.Open(*tracePath); err == nil {
			records, err = hybridsched.ReadSWF(f)
			f.Close()
		}
	default:
		var f *os.File
		if f, err = os.Open(*tracePath); err == nil {
			records, err = hybridsched.ReadTraceCSV(f)
			f.Close()
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	rep, err := hybridsched.Simulate(hybridsched.SimulationConfig{
		Nodes:     *nodes,
		Mechanism: *mech,
	}, records)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	cw.Write([]string{"id", "class", "size", "submit", "start", "end",
		"turnaround_s", "start_delay_s", "preempts", "shrinks"})
	for _, r := range rep.PerJob {
		cw.Write([]string{
			strconv.Itoa(r.ID), r.Class.String(), strconv.Itoa(r.Size),
			strconv.FormatInt(r.Submit, 10), strconv.FormatInt(r.Start, 10),
			strconv.FormatInt(r.End, 10), strconv.FormatInt(r.Turnaround, 10),
			strconv.FormatInt(r.StartDelay, 10),
			strconv.Itoa(r.PreemptCount), strconv.Itoa(r.ShrinkCount),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %d jobs under %s on %d nodes\n", rep.Jobs, *mech, *nodes)
	fmt.Printf("  makespan %s, utilization %.1f%%, instant starts %.1f%%\n",
		hybridsched.FormatDuration(rep.Makespan), 100*rep.Utilization, 100*rep.InstantStartRate)
	fmt.Printf("  per-job outcomes -> %s\n", *out)
}
