// Schedd client example: start the scheduling daemon in-process on a random
// port, then drive it exactly as a remote tenant would — plain HTTP/JSON,
// no imports from the simulator itself. A session is created for tenant
// "acme", jobs are submitted online, virtual time is advanced while an SSE
// stream reports scheduling events live, and the run ends with a snapshot
// and a /metrics scrape.
//
// Everything below the "client side" marker works unchanged against a
// separately deployed daemon (cmd/schedd); the in-process server only keeps
// the example self-contained.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"hybridsched/internal/server"
)

func main() {
	srv, err := server.New(server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	base := ts.URL
	fmt.Printf("schedd listening at %s\n\n", base)

	// ---- client side: everything from here is ordinary HTTP ----

	// Create a 256-node session for tenant acme under the paper's combined
	// mechanism.
	var sess struct {
		ID     string `json:"id"`
		Tenant string `json:"tenant"`
	}
	post(base+"/v1/sessions", map[string]any{
		"tenant": "acme", "mechanism": "CUA&SPAA", "nodes": 256,
	}, &sess)
	fmt.Printf("created session %s for tenant %s\n", sess.ID, sess.Tenant)
	sessURL := base + "/v1/sessions/" + sess.ID

	// Subscribe to the live event stream before submitting anything.
	events := make(chan string, 64)
	resp, err := http.Get(sessURL + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	go readSSE(resp.Body, events)

	// Submit a batch of rigid jobs and one announced on-demand job.
	jobs := []map[string]any{}
	for i := 1; i <= 8; i++ {
		jobs = append(jobs, map[string]any{
			"id": i, "class": "rigid", "submit": i * 600,
			"size": 32, "work": 2 * 3600,
		})
	}
	jobs = append(jobs, map[string]any{
		"id": 100, "class": "on-demand", "submit": 4 * 3600,
		"size": 128, "work": 3600,
		"notice": "accurate", "notice_time": 3 * 3600, "est_arrival": 4 * 3600,
	})
	post(sessURL+"/jobs", jobs, nil)
	fmt.Printf("submitted %d jobs\n\n", len(jobs))

	// Advance a simulated day, then print the events the stream delivered.
	var adv struct {
		Now       int64 `json:"now"`
		Completed int   `json:"completed"`
	}
	post(sessURL+"/advance", map[string]any{"hours": 24}, &adv)
	fmt.Printf("advanced to t=%dh, %d jobs completed; events seen:\n", adv.Now/3600, adv.Completed)
	for done := false; !done; {
		select {
		case line := <-events:
			fmt.Printf("  %s\n", line)
		default:
			done = true
		}
	}

	// Inspect the session state.
	var snap struct {
		Now        int64 `json:"Now"`
		FreeNodes  int   `json:"FreeNodes"`
		QueueDepth int   `json:"QueueDepth"`
		Completed  int   `json:"Completed"`
	}
	get(sessURL+"/snapshot", &snap)
	fmt.Printf("\nsnapshot: t=%dh free=%d queue=%d completed=%d\n",
		snap.Now/3600, snap.FreeNodes, snap.QueueDepth, snap.Completed)

	// Scrape the daemon's own instruments.
	r, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	fmt.Println("\nselected /metrics:")
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "schedd_jobs_") || strings.HasPrefix(line, "schedd_sessions_live") {
			fmt.Printf("  %s\n", line)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, sessURL, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsession deleted")
}

// post sends a JSON body and decodes the JSON reply into out (if non-nil).
func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

// get decodes a JSON GET response into out.
func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// readSSE forwards "event: data" pairs from an SSE body as single lines.
func readSSE(body interface{ Read([]byte) (int, error) }, out chan<- string) {
	sc := bufio.NewScanner(body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "sched":
			select {
			case out <- strings.TrimPrefix(line, "data: "):
			default: // example keeps a bounded buffer; drop extras
			}
		}
	}
}
