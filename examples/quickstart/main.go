// Quickstart: generate a small hybrid workload, run it under the paper's
// best all-round mechanism (CUA&SPAA) and under the plain FCFS/EASY
// baseline, and compare the headline metrics (paper Observation 1).
package main

import (
	"fmt"
	"log"

	"hybridsched"
)

func main() {
	// One week on a 512-node system keeps this instant; drop the overrides
	// for the full 4392-node Theta model.
	records, err := hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{
		Seed:        42,
		Weeks:       1,
		Nodes:       512,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64, 128, 256},
		SizeWeights: []float64{0.3, 0.25, 0.2, 0.15, 0.1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs over one week on 512 nodes\n\n", len(records))

	for _, mech := range []string{"baseline", "CUA&SPAA"} {
		rep, err := hybridsched.Simulate(hybridsched.SimulationConfig{
			Nodes:     512,
			Mechanism: mech,
		}, records)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", mech)
		fmt.Printf("  avg turnaround     %.1f h\n", rep.All.MeanTurnaroundH)
		fmt.Printf("  system utilization %.1f%%\n", 100*rep.Utilization)
		fmt.Printf("  instant starts     %.1f%% of on-demand jobs\n", 100*rep.InstantStartRate)
		fmt.Printf("  preempted          %.1f%% rigid, %.1f%% malleable\n\n",
			100*rep.Rigid.PreemptRatio, 100*rep.Malleable.PreemptRatio)
	}
	fmt.Println("CUA&SPAA serves on-demand jobs almost instantly by reserving")
	fmt.Println("released nodes after each advance notice and shrinking running")
	fmt.Println("malleable jobs at arrival, at a small turnaround cost.")
}
