// Urgent analytics: the paper's motivating scenario (§I, §II-A). An
// experimental facility (think light source or telescope pipeline) submits
// bursts of time-critical analysis jobs to a supercomputer that is otherwise
// packed with batch simulations. The experiment schedule is known, so most
// urgent jobs can announce themselves 15-30 minutes ahead.
//
// The example compares how each mechanism absorbs the bursts, reproducing
// the Figure 6 story on a laptop scale: every mechanism achieves a high
// instant-start rate, N&PAA pays the highest price for it, and the
// advance-notice mechanisms (CUA/CUP) protect the batch workload best.
package main

import (
	"fmt"
	"log"

	"hybridsched"
)

func main() {
	// A W2-style workload: most on-demand jobs carry an accurate advance
	// notice, as when analysis needs follow a published beam schedule.
	records, err := hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{
		Seed:        7,
		Weeks:       2,
		Nodes:       1024,
		MinJobSize:  32,
		SizeBuckets: []int{32, 64, 128, 256, 512},
		SizeWeights: []float64{0.3, 0.25, 0.2, 0.15, 0.1},
		Mix:         hybridsched.W2,
	})
	if err != nil {
		log.Fatal(err)
	}
	var odCount int
	for _, r := range records {
		if r.Class == hybridsched.OnDemand {
			odCount++
		}
	}
	fmt.Printf("workload: %d jobs (%d urgent analytics) over two weeks on 1024 nodes\n\n",
		len(records), odCount)
	fmt.Printf("%-10s %9s %9s %11s %11s %12s\n",
		"mechanism", "instant", "util", "turnaround", "batch turn", "urgent delay")

	for _, mech := range hybridsched.Mechanisms() {
		rep, err := hybridsched.Simulate(hybridsched.SimulationConfig{
			Nodes:     1024,
			Mechanism: mech,
		}, records)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.1f%% %8.1f%% %10.1fh %10.1fh %11.0fs\n",
			mech,
			100*rep.InstantStartRate,
			100*rep.Utilization,
			rep.All.MeanTurnaroundH,
			rep.Rigid.MeanTurnaroundH,
			rep.MeanStartDelay)
	}
	fmt.Println("\nWith accurate notices, CUA/CUP gather released nodes ahead of each")
	fmt.Println("burst, so urgent jobs start instantly without preempting the batch")
	fmt.Println("simulations that N&PAA must interrupt.")
}
