// ML sweep: the malleability incentive (paper Observation 6). A research
// group runs hyperparameter sweeps — bags of loosely coupled trials that can
// run on anywhere between 20% and 100% of their preferred allocation. Should
// they declare the sweeps malleable, or lie and submit them as rigid jobs?
//
// The example runs the same workload twice under CUA&SPAA: once with the
// sweeps declared malleable, once with the identical jobs declared rigid.
// Declaring malleability should pay: malleable jobs squeeze into fragments,
// start earlier, and are guaranteed re-expansion after lending nodes.
package main

import (
	"fmt"
	"log"

	"hybridsched"
)

func main() {
	records, err := hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{
		Seed:        11,
		Weeks:       2,
		Nodes:       1024,
		MinJobSize:  32,
		SizeBuckets: []int{32, 64, 128, 256, 512},
		SizeWeights: []float64{0.3, 0.25, 0.2, 0.15, 0.1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The "honest" trace keeps the generated malleable sweeps; the "lying"
	// variant declares the very same jobs rigid (fixed at their maximum).
	honest := records
	lying := make([]hybridsched.Record, len(records))
	sweeps := map[int]bool{}
	for i, r := range records {
		lying[i] = r
		if r.Class == hybridsched.Malleable {
			sweeps[r.ID] = true
			lying[i].Class = hybridsched.Rigid
			lying[i].MinSize = r.Size
		}
	}
	fmt.Printf("workload: %d jobs, %d of them hyperparameter sweeps\n\n", len(records), len(sweeps))

	meanSweepTurnaround := func(rep hybridsched.Report) float64 {
		var sum float64
		var n int
		for _, res := range rep.PerJob {
			if sweeps[res.ID] {
				sum += float64(res.Turnaround) / 3600
				n++
			}
		}
		return sum / float64(n)
	}

	cfg := hybridsched.SimulationConfig{Nodes: 1024, Mechanism: "CUA&SPAA"}
	repHonest, err := hybridsched.Simulate(cfg, honest)
	if err != nil {
		log.Fatal(err)
	}
	repLying, err := hybridsched.Simulate(cfg, lying)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s\n", "", "declared", "declared")
	fmt.Printf("%-28s %12s %12s\n", "", "malleable", "rigid")
	fmt.Printf("%-28s %11.1fh %11.1fh\n", "sweep mean turnaround",
		meanSweepTurnaround(repHonest), meanSweepTurnaround(repLying))
	fmt.Printf("%-28s %11.1fh %11.1fh\n", "whole-system turnaround",
		repHonest.All.MeanTurnaroundH, repLying.All.MeanTurnaroundH)
	fmt.Printf("%-28s %11.1f%% %11.1f%%\n", "system utilization",
		100*repHonest.Utilization, 100*repLying.Utilization)
	fmt.Printf("%-28s %11.1f%% %11.1f%%\n", "on-demand instant starts",
		100*repHonest.InstantStartRate, 100*repLying.InstantStartRate)

	if h, l := meanSweepTurnaround(repHonest), meanSweepTurnaround(repLying); h < l {
		fmt.Printf("\nHonesty pays: declaring malleability cut the sweeps' turnaround by %.0f%%\n",
			100*(1-h/l))
		fmt.Println("(they start early on leftover fragments and expand when nodes free up),")
		fmt.Println("discouraging users from disguising malleable work as rigid jobs (Obs. 6).")
	} else {
		fmt.Println("\nUnexpected: rigid declaration won on this trace - try another seed.")
	}
}
