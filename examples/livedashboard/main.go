// Livedashboard: drive a Session step-wise and render a live view of the
// system — one line per simulated hour with utilization, cluster occupancy,
// queue depth, and the scheduling events that happened in that hour,
// consumed from the Observer event stream.
//
// This is the scenario the batch Simulate() call cannot express: the
// simulation advances under our control, state is inspected mid-run, and an
// urgent on-demand job is injected while the system is busy — an online
// submission, not part of the pre-loaded trace.
package main

import (
	"fmt"
	"log"

	"hybridsched"
)

func main() {
	records, err := hybridsched.GenerateWorkload(hybridsched.WorkloadConfig{
		Seed:        7,
		Weeks:       1,
		Nodes:       512,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64, 128},
		SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
	})
	if err != nil {
		log.Fatal(err)
	}

	s, err := hybridsched.NewSession(
		hybridsched.WithNodes(512),
		hybridsched.WithMechanism("CUA&SPAA"),
	)
	if err != nil {
		log.Fatal(err)
	}
	events := s.Events()
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			log.Fatal(err)
		}
	}
	// "util" is the paper's cumulative utilization (completed work over the
	// window so far) — it lags the instantaneous busy count early in the run
	// and converges as jobs finish; busy/resv/free is the live occupancy.
	fmt.Printf("dashboard: %d jobs pre-loaded on a 512-node system\n", len(records))
	fmt.Printf("%5s  %6s  %14s  %5s  %s\n", "hour", "util", "busy/resv/free", "queue", "events this hour")

	const injectHour = 24 // submit an urgent analytics job a day in
	injected := false
	for hour := int64(1); ; hour++ {
		if err := s.RunUntil(hour * hybridsched.Hour); err != nil {
			log.Fatal(err)
		}

		// Drain the hour's event stream (non-blocking: the session buffers).
		counts := map[hybridsched.EventType]int{}
		for drained := false; !drained; {
			select {
			case ev := <-events:
				counts[ev.Type]++
			default:
				drained = true
			}
		}

		snap := s.Snapshot()
		fmt.Printf("%4dh  %5.1f%%  %4d/%4d/%4d  %5d  %s\n",
			hour, 100*snap.Metrics.Utilization,
			snap.BusyNodes, snap.ReservedNodes, snap.FreeNodes,
			snap.QueueDepth, eventLine(counts))

		if hour == injectHour && !injected {
			injected = true
			urgent := hybridsched.Record{
				ID:         1_000_000,
				Class:      hybridsched.OnDemand,
				Submit:     snap.Now + 30*60, // arrives in 30 minutes
				Size:       128,
				MinSize:    128,
				Work:       2 * hybridsched.Hour,
				Estimate:   3 * hybridsched.Hour,
				Notice:     hybridsched.AccurateNotice,
				NoticeTime: snap.Now, // announced right now
				EstArrival: snap.Now + 30*60,
			}
			if err := s.Submit(urgent); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("       >>> urgent 128-node on-demand job submitted online, arriving at t+30min\n")
		}

		if snap.Completed == snap.Submitted {
			break
		}
	}

	rep := s.Report()
	fmt.Printf("\nfinal: %d jobs, utilization %.1f%%, instant starts %.1f%%, %d events dropped\n",
		rep.Jobs, 100*rep.Utilization, 100*rep.InstantStartRate, s.DroppedEvents())
}

// eventLine renders an hour's event counts compactly, in a fixed order.
func eventLine(counts map[hybridsched.EventType]int) string {
	order := []hybridsched.EventType{
		hybridsched.EventArrival, hybridsched.EventNotice, hybridsched.EventStart,
		hybridsched.EventEnd, hybridsched.EventWarning, hybridsched.EventPreempt,
		hybridsched.EventShrink, hybridsched.EventExpand, hybridsched.EventCheckpoint,
	}
	line := ""
	for _, t := range order {
		if n := counts[t]; n > 0 {
			if line != "" {
				line += " "
			}
			line += fmt.Sprintf("%s:%d", t, n)
		}
	}
	if line == "" {
		return "-"
	}
	return line
}
