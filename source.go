package hybridsched

import (
	"io"

	"hybridsched/internal/source"
	"hybridsched/internal/trace"
)

// Source is the one composable abstraction for every way jobs enter a
// simulation: synthetic generation, trace files, record slices, and streams
// produced by user code. Next yields the next record with ok=true; ok=false
// ends the stream (err may accompany it). Sources must yield records in
// non-decreasing Submit order and are single-use.
//
// Sources compose — Merge, Scale, Filter, Relabel, Shift, Limit — and every
// transform is itself a Source. Sessions consume them lazily with
// SubmitSource (records are drawn as virtual time advances, so multi-week
// trace files are never slurped into memory), sweeps replay them via
// SweepSpec.Source, and CLIs name them with the textual spec grammar of
// ParseSource.
type Source = source.Source

// SourceFunc adapts a function to the Source interface.
type SourceFunc = source.Func

// FromRecords returns a Source yielding records in slice order. The slice is
// not copied; callers must not mutate it while the source is in use. Use
// SortSource first if the slice is not in Submit order.
func FromRecords(records []Record) Source { return source.FromRecords(records) }

// FromCSV returns a streaming Source over the native CSV trace dialect
// (plain or gzipped — compression is detected from the content, not the
// name): records are parsed one at a time, so a multi-week trace feeds a
// session without ever being resident in memory as a whole. The reader is
// not closed; use OpenSource for files.
func FromCSV(r io.Reader) Source { return source.FromCSV(r) }

// FromSWF returns a streaming Source over a Standard Workload Format trace
// (plain or gzipped, detected from the content). Every SWF job imports as
// rigid (see ReadSWF); compose with Relabel to promote imports to the
// on-demand or malleable classes.
func FromSWF(r io.Reader) Source { return source.FromSWF(r) }

// FromBorg returns a streaming Source over a Google/Borg ClusterData events
// table (job_events or task_events CSV, plain or gzipped). Completed jobs
// emerge in submit order through a constant-memory watermark join; every
// import is rigid — compose with Relabel to impose the hybrid class
// structure. See the internal tracecorpus package and DESIGN.md for exactly
// which trace fields are consumed.
func FromBorg(r io.Reader) Source { return source.FromBorg(r) }

// FromAlibaba returns a streaming Source over the Alibaba cluster-trace
// batch format (batch_task.csv, plain or gzipped): one rigid record per
// Terminated task, with the instance count as the width. Compose with
// Relabel to impose the hybrid class structure.
func FromAlibaba(r io.Reader) Source { return source.FromAlibaba(r) }

// OpenSource returns a streaming Source over a trace file, dispatching on
// the extension after stripping a trailing ".gz" (".swf"/".swf.gz" → SWF,
// anything else → native CSV; gzip is detected by content, so the suffix
// only selects the dialect). The file is closed once the stream is drained
// or fails. Borg and Alibaba corpora are not auto-detected — use FromBorg/
// FromAlibaba or the "borg:"/"alibaba:" spec heads.
func OpenSource(path string) (Source, error) { return source.Open(path) }

// Synthetic returns a Source over the calibrated Theta-model generator: the
// same config (and seed) always yields the same stream, and feeding it to a
// Session reproduces GenerateWorkload + Simulate exactly.
func Synthetic(cfg WorkloadConfig) Source { return source.Synthetic(cfg) }

// Merge interleaves sources in non-decreasing Submit order (ties resolve to
// the earlier operand), assuming each input is itself time-ordered. Merged
// records are renumbered with sequential IDs — independent sources routinely
// number their jobs 1..n — while project IDs are left untouched, so apply
// Relabel before merging when project spaces collide.
func Merge(srcs ...Source) Source { return source.Merge(srcs...) }

// Scale compresses arrival times by factor, raising the offered load: with
// factor 1.2 the same jobs arrive in 1/1.2 of the original span (load ×1.2);
// factors below 1 dilate time and lower the load.
func Scale(src Source, factor float64) Source { return source.Scale(src, factor) }

// Filter yields only the records keep accepts.
func Filter(src Source, keep func(Record) bool) Source { return source.Filter(src, keep) }

// RelabelRule reassigns job classes project-by-project, the paper's §IV-A
// relabeling of the Theta log: all jobs of one project share a class, with
// fixed fractions of projects assigned on-demand and rigid (the remainder
// malleable), deterministic in the rule's Seed. It is the supported way to
// promote rigid SWF imports to the hybrid classes. The zero value takes the
// paper defaults (see PaperRelabel).
type RelabelRule = source.RelabelRule

// PaperRelabel returns the paper-faithful relabeling rule: 10% of projects
// on-demand, 60% rigid, 30% malleable, balanced W5 notice mix, 15–30 minute
// notice leads, 1024-node on-demand size cap.
func PaperRelabel() RelabelRule { return source.PaperRule() }

// Relabel rewrites every record's class (and the class-dependent fields:
// minimum size, notice category and instants) under rule, leaving arrival
// times, sizes, runtimes, and IDs untouched.
func Relabel(src Source, rule RelabelRule) Source { return source.Relabel(src, rule) }

// Shift translates all absolute instants by dt seconds.
func Shift(src Source, dt int64) Source { return source.Shift(src, dt) }

// Limit yields at most n records.
func Limit(src Source, n int) Source { return source.Limit(src, n) }

// Shard deterministically selects the i-th of n hash-shards of a stream
// (0-based): a record is kept iff the splitmix64 hash of its job ID lands
// in shard i. Selection depends only on the ID, so the split is stable
// across runs and workers, and the disjoint union of all n shards is
// exactly the unsharded stream. In the spec grammar it is "shard:I/N".
func Shard(src Source, n, i int) Source { return source.Shard(src, n, i) }

// SortSource buffers the whole input and re-yields it in stable Submit
// order. Use it for inputs that cannot guarantee time order; it necessarily
// forfeits streaming.
func SortSource(src Source) Source { return source.Sorted(src) }

// ReadAllSource drains a source into a record slice — the bridge from the
// streaming world to APIs that want a materialized trace (Simulate,
// WriteTraceCSV).
func ReadAllSource(src Source) ([]Record, error) { return source.ReadAll(src) }

// ParseSource compiles a source spec — the textual pipeline grammar shared
// by the CLIs and sweep grids — into a Source:
//
//	spec      = pipeline { "+" pipeline }          merge, time-ordered
//	pipeline  = head { "|" transform }
//	head      = "csv:PATH" | "swf:PATH" | "borg:PATH" | "alibaba:PATH"
//	          | "synthetic[:k=v,...]"              keys: seed weeks nodes mix load
//	          | NAME[":ARG"]                       registered with RegisterSource
//	transform = "relabel:paper" | "relabel:k=v,..."
//	          | "scale:F" | "shift:SECS" | "limit:N" | "filter:k=v,..."
//	          | "shard:I/N"                        deterministic hash-shard i of n
//
// Example: "swf:theta.swf|relabel:paper|scale:1.2" replays the Theta log
// with the paper's class mix at 1.2× load. File-backed pipelines open their
// files immediately (a bad path fails here) but read them lazily.
func ParseSource(spec string) (Source, error) { return source.Parse(spec) }

// SourceFactory builds a Source from the argument text of a registered spec
// head ("name:arg" invokes the factory registered under "name" with "arg").
// Factories must return a fresh, single-use Source per call.
type SourceFactory = source.Factory

// RegisterSource makes factory resolvable as a spec head everywhere source
// specs are accepted — ParseSource, SweepSpec.Source, and the -source flags
// of the CLI tools — mirroring RegisterScheduler and RegisterPolicy.
// Registration is append-only and fails on a duplicate or built-in name.
func RegisterSource(name string, factory SourceFactory) error {
	return source.Register(name, factory)
}

// SourceNames returns every resolvable source-spec head: the built-ins
// (csv, swf, borg, alibaba, synthetic), then registered extensions.
func SourceNames() []string { return source.Names() }

// SWFSummary reports what an SWF import did: jobs read (all rigid), jobs
// skipped, and how often missing fields were defaulted.
type SWFSummary = trace.SWFSummary

// ReadSWFSummary imports an SWF trace like ReadSWF and additionally returns
// the import summary, so callers can surface what was defaulted and what
// was dropped instead of importing silently.
func ReadSWFSummary(r io.Reader) ([]Record, SWFSummary, error) {
	return trace.ReadSWFSummary(r)
}
