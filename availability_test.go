package hybridsched

import (
	"strings"
	"testing"
)

// degradedRecords is a small trace for availability tests: a handful of
// rigid jobs that together need most of the system.
func degradedRecords(t *testing.T) []Record {
	t.Helper()
	recs, err := GenerateWorkload(WorkloadConfig{
		Seed: 3, Nodes: 256, Weeks: 1, Projects: 10, TargetLoad: 0.7,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64},
		SizeWeights: []float64{0.5, 0.3, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestSessionWithDrainEmitsTypedEvents(t *testing.T) {
	var drains, downs, ups int
	var downNodes, upNodes int
	obs := ObserverFunc(func(ev Event) {
		switch ev.Type {
		case EventDrain, EventNodeDown, EventNodeUp:
			if ev.Job != -1 {
				t.Errorf("node event with job %d attached", ev.Job)
			}
		}
		switch ev.Type {
		case EventDrain:
			drains++
		case EventNodeDown:
			downs++
			downNodes += ev.Nodes
		case EventNodeUp:
			ups++
			upNodes += ev.Nodes
		}
	})
	sess, err := NewSession(
		WithNodes(256),
		WithMechanism("baseline"),
		WithValidate(true),
		WithDrain(3600, 6*3600, 64),
		WithObserver(obs),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range degradedRecords(t) {
		if err := sess.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if drains != 1 || downs == 0 || ups == 0 {
		t.Fatalf("node events drain=%d down=%d up=%d", drains, downs, ups)
	}
	if downNodes != upNodes {
		t.Fatalf("down/up node counts unbalanced: %d vs %d", downNodes, upNodes)
	}
	if rep.DownNodeSeconds == 0 {
		t.Fatal("drain removed no capacity from the report ledger")
	}
	snap := sess.Snapshot()
	if snap.DownNodes != 0 {
		t.Fatalf("%d nodes still down after the run", snap.DownNodes)
	}
}

func TestSessionWithFaults(t *testing.T) {
	sess, err := NewSession(
		WithNodes(256),
		WithMechanism("CUA&SPAA"),
		WithValidate(true),
		WithFaults(FaultConfig{MTBF: 4 * 3600, Seed: 11, Horizon: 4 * 7 * 24 * Hour, MeanRepair: 3600}),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range degradedRecords(t) {
		if err := sess.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailuresInjected == 0 {
		t.Fatal("no failures struck at a 4 h MTBF over a week")
	}
	if rep.DownNodeSeconds == 0 {
		t.Fatal("repairs removed no capacity")
	}
}

func TestSessionFaultValidation(t *testing.T) {
	for _, cfg := range []FaultConfig{
		{MTBF: 0, Horizon: 1},
		{MTBF: 1, Horizon: 0},
		{MTBF: 1, Horizon: 1, MeanRepair: -1},
	} {
		if _, err := NewSession(WithFaults(cfg)); err == nil {
			t.Errorf("WithFaults(%+v) accepted", cfg)
		}
	}
	if _, err := NewSession(WithDrain(-10, 100, 4)); err == nil || !strings.Contains(err.Error(), "drain") {
		t.Errorf("WithDrain in the past accepted (err %v)", err)
	}
}

func TestSweepFaultCells(t *testing.T) {
	wl := WorkloadConfig{
		Seed: 5, Nodes: 256, Weeks: 1, Projects: 10, TargetLoad: 0.6,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64},
		SizeWeights: []float64{0.5, 0.3, 0.2},
	}
	specs := []SweepSpec{
		{Label: "clean", Workload: wl, Sim: SimulationConfig{Nodes: 256, Mechanism: "baseline"}},
		{Label: "faulty", Workload: wl, Sim: SimulationConfig{Nodes: 256, Mechanism: "baseline"},
			FaultMTBF: 4 * 3600, FaultMeanRepair: 3600},
		{Label: "drained", Workload: wl, Sim: SimulationConfig{Nodes: 256, Mechanism: "baseline"},
			Drains: []DrainSpec{{Start: 3600, Duration: 12 * 3600, Nodes: 64}}},
	}
	rep, err := RunSweep(specs, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	clean, faulty, drained := rep.Results[0].Report, rep.Results[1].Report, rep.Results[2].Report
	if clean.FailuresInjected != 0 || clean.DownNodeSeconds != 0 {
		t.Fatalf("clean cell has availability telemetry: %+v", clean.FailuresInjected)
	}
	if faulty.FailuresInjected == 0 || faulty.DownNodeSeconds == 0 {
		t.Fatal("fault cell recorded no failures/downtime")
	}
	if drained.DownNodeSeconds == 0 {
		t.Fatal("drain cell recorded no downtime")
	}
	// The emitters must carry the telemetry (failures column non-zero for the
	// fault cell only).
	var buf strings.Builder
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines %d", len(lines))
	}
	if !strings.Contains(lines[0], "failures") || !strings.Contains(lines[0], "unavailable_frac") {
		t.Fatalf("csv header missing availability columns: %s", lines[0])
	}
}
