// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's experiment index). Each benchmark runs its experiment at
// a reduced-but-representative scale (1024 nodes, 1-2 weeks, 2 seeds) so the
// full suite completes in minutes; cmd/expdriver runs the paper-scale
// versions. b.N iterations re-run the full experiment, so ns/op is the cost
// of regenerating the artifact.
package hybridsched

import (
	"fmt"
	"testing"

	"hybridsched/internal/core"
	"hybridsched/internal/exp"
	"hybridsched/internal/faults"
	"hybridsched/internal/sim"
	"hybridsched/internal/simtime"
	"hybridsched/internal/trace"
	"hybridsched/internal/workload"

	"hybridsched/internal/checkpoint"
)

// benchOpt is the reduced experiment scale used by the benchmarks.
func benchOpt() exp.Options {
	return exp.Options{Nodes: 1024, Weeks: 1, Seeds: 2, BaseSeed: 1}
}

func BenchmarkTableI_WorkloadSummary(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableI(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_SizeHistogram(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure3(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4_TypeDistribution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure4(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5_WeeklyOnDemand(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpt()
	opt.Weeks = 4 // weekly series need several weeks
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure5(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_Baseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableII(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6_Mechanisms(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpt()
	opt.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure6(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7_CheckpointFrequency(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpt()
	opt.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure7(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecisionLatency measures the paper's Observation 10 directly: the
// wall-clock cost of one arrival decision (PAA victim selection) against a
// machine packed with hundreds of running jobs. The paper requires < 10 ms;
// the reported ns/op is the per-decision cost.
func BenchmarkDecisionLatency(b *testing.B) {
	b.ReportAllocs()
	recs, err := workload.Generate(workload.Config{
		Seed: 1, Nodes: 4392, Weeks: 1,
		MinJobSize:  8,
		SizeBuckets: []int{8, 16, 32, 64},
		SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
	})
	if err != nil {
		b.Fatal(err)
	}
	jobs := trace.Materialize(recs, func(size int) checkpoint.Plan {
		return checkpoint.NewPlan(size, 24*3600, 1)
	})
	m, _ := core.ByName("N&SPAA", core.DefaultConfig())
	e, err := sim.New(sim.Config{Nodes: 4392}, jobs, m)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		b.Fatal(err)
	}
	if rep.DecisionCount == 0 {
		b.Fatal("no decisions measured")
	}
	b.ResetTimer()
	// Report the measured mean decision latency as the benchmark metric.
	for i := 0; i < b.N; i++ {
		_ = rep.MeanDecisionMs
	}
	b.ReportMetric(rep.MeanDecisionMs, "mean-ms/decision")
	b.ReportMetric(rep.MaxDecisionMs, "max-ms/decision")
}

func BenchmarkAblationBackfillReserved(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpt()
	opt.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationBackfillReserved(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMinSizeFraction(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpt()
	opt.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationMinSizeFraction(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoticeLead(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpt()
	opt.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationNoticeLead(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDirectedReturn(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpt()
	opt.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationDirectedReturn(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationQueuePolicy(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpt()
	opt.Seeds = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationQueuePolicy(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionFaults sweeps system MTBF under fault injection — the
// checkpoint/restart interplay extension from DESIGN.md.
func BenchmarkExtensionFaults(b *testing.B) {
	b.ReportAllocs()
	recs, err := workload.Generate(workload.Config{
		Seed: 1, Nodes: 1024, Weeks: 1,
		MinJobSize:  32,
		SizeBuckets: []int{32, 64, 128, 256},
		SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mtbfH := range []float64{6, 24, 96} {
		b.Run(fmt.Sprintf("mtbf-%gh", mtbfH), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				jobs := trace.Materialize(recs, func(size int) checkpoint.Plan {
					return checkpoint.NewPlan(size, mtbfH*3600, 1)
				})
				m, _ := core.ByName("CUA&SPAA", core.DefaultConfig())
				inj := faults.Wrap(m, faults.Config{MTBF: mtbfH * 3600, Seed: 7, Horizon: 4 * simtime.Week})
				e, err := sim.New(sim.Config{Nodes: 1024}, jobs, inj)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*rep.Utilization, "util-%")
				b.ReportMetric(100*rep.Breakdown.Lost, "lost-%")
				b.ReportMetric(float64(inj.Failures), "failures")
			}
		})
	}
}

// BenchmarkSimulationThroughput measures raw engine speed: one full 4-week,
// 4392-node simulation per iteration.
func BenchmarkSimulationThroughput(b *testing.B) {
	b.ReportAllocs()
	recs, err := workload.Generate(workload.Config{Seed: 1, Weeks: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		jobs := trace.Materialize(recs, func(size int) checkpoint.Plan {
			return checkpoint.NewPlan(size, 24*3600, 1)
		})
		m, _ := core.ByName("CUA&SPAA", core.DefaultConfig())
		e, _ := sim.New(sim.Config{}, jobs, m)
		b.StartTimer()
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "jobs/sim")
}
