module hybridsched

go 1.24
