package hybridsched

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// countedsrc registration state, shared across -count reruns (see
// TestRunSweepWithSourceSpecs).
var (
	countedSrcOnce    sync.Once
	countedSrcErr     error
	countedSrcCalls   *int
	countedSrcRecords []Record
)

// sweepGrid is a small mechanism × seed grid on a 512-node, one-week system.
func sweepGrid() []SweepSpec {
	var specs []SweepSpec
	for _, mech := range []string{"baseline", "CUA&SPAA"} {
		for seed := int64(1); seed <= 2; seed++ {
			specs = append(specs, SweepSpec{
				Label: mech,
				Workload: WorkloadConfig{
					Seed: seed, Nodes: 512, Weeks: 1,
					MinJobSize:  16,
					SizeBuckets: []int{16, 32, 64, 128},
					SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
				},
				Sim: SimulationConfig{Nodes: 512, Mechanism: mech},
			})
		}
	}
	return specs
}

func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	specs := sweepGrid()
	serialize := func(workers int) (string, string) {
		rep, err := RunSweep(specs, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := serialize(1)
	j8, c8 := serialize(8)
	if j1 != j8 {
		t.Fatal("workers=8 JSON differs from workers=1")
	}
	if c1 != c8 {
		t.Fatal("workers=8 CSV differs from workers=1")
	}
	if !strings.Contains(c1, "CUA&SPAA") {
		t.Fatalf("CSV missing mechanism rows:\n%s", c1)
	}
}

func TestRunSweepResultsInGridOrder(t *testing.T) {
	specs := sweepGrid()
	rep, err := RunSweep(specs, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(specs) {
		t.Fatalf("results %d, want %d", len(rep.Results), len(specs))
	}
	for i, res := range rep.Results {
		if res.Spec.Label != specs[i].Label || res.Spec.Workload.Seed != specs[i].Workload.Seed {
			t.Fatalf("result %d out of grid order: %+v", i, res.Spec)
		}
		if res.Err != "" {
			t.Fatalf("cell %d failed: %s", i, res.Err)
		}
		if res.Report.Jobs == 0 {
			t.Fatalf("cell %d has empty report", i)
		}
	}
}

func TestRunSweepIsolatesFailures(t *testing.T) {
	specs := sweepGrid()[:2]
	bad := specs[0]
	bad.Sim.Mechanism = "NOPE"
	rep, err := RunSweep([]SweepSpec{bad, specs[0], specs[1]}, SweepOptions{Workers: 2})
	if err == nil {
		t.Fatal("error must wrap the first failed cell")
	}
	if rep == nil || len(rep.Results) != 3 {
		t.Fatal("partial results must still be returned")
	}
	if rep.Results[0].Err == "" {
		t.Fatal("bad cell must carry its error")
	}
	if rep.Results[1].Err != "" || rep.Results[2].Err != "" {
		t.Fatal("healthy cells must complete despite a failing sibling")
	}
}

func TestRunSweepHonorsNoDirectedReturn(t *testing.T) {
	// The flag must survive the spec translation even when every other core
	// knob is left at its zero value.
	spec := sweepGrid()[3]
	spec.Sim.NoDirectedReturn = true
	rep, err := RunSweep([]SweepSpec{spec}, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Report.Jobs == 0 {
		t.Fatal("empty report")
	}
}

// TestRunSweepWithSourceSpecs: a Source-bearing grid must stay deterministic
// for any worker count, and identical file-backed specs must read the trace
// file exactly once across the whole sweep.
func TestRunSweepWithSourceSpecs(t *testing.T) {
	records, err := GenerateWorkload(WorkloadConfig{
		Seed: 4, Nodes: 512, Weeks: 1,
		MinJobSize:  16,
		SizeBuckets: []int{16, 32, 64, 128},
		SizeWeights: []float64{0.4, 0.3, 0.2, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var swf bytes.Buffer
	if err := WriteSWF(&swf, records); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "theta.swf")
	if err := os.WriteFile(path, swf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := "swf:" + path + "|relabel:paper|scale:1.2"
	var specs []SweepSpec
	for _, mech := range []string{"baseline", "N&PAA", "CUA&SPAA"} {
		specs = append(specs, SweepSpec{
			Label:  mech,
			Source: spec,
			Sim:    SimulationConfig{Nodes: 512, Mechanism: mech},
		})
	}
	serialize := func(workers int) (string, string) {
		rep, err := RunSweep(specs, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := serialize(1)
	j4, c4 := serialize(4)
	if j1 != j4 || c1 != c4 {
		t.Fatal("source-backed sweep output differs across worker counts")
	}
	if !strings.Contains(j1, "relabel:paper") {
		t.Error("emitted rows should carry the source spec")
	}
	// Identical specs share one materialization: with the file deleted
	// mid-sweep impossible to assert directly here, so assert via a
	// one-shot source head registered to count invocations. Registration is
	// append-only, so it happens once per test binary and routes through
	// package-level pointers — keeping the test correct under -count>1.
	calls := 0
	countedSrcCalls, countedSrcRecords = &calls, records
	countedSrcOnce.Do(func() {
		countedSrcErr = RegisterSource("countedsrc", func(arg string) (Source, error) {
			*countedSrcCalls++
			return FromRecords(countedSrcRecords), nil
		})
	})
	if countedSrcErr != nil {
		t.Fatal(countedSrcErr)
	}
	var counted []SweepSpec
	for _, mech := range []string{"baseline", "N&PAA", "CUA&SPAA"} {
		counted = append(counted, SweepSpec{
			Label:  mech,
			Source: "countedsrc",
			Sim:    SimulationConfig{Nodes: 512, Mechanism: mech},
		})
	}
	if _, err := RunSweep(counted, SweepOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("identical source specs materialized %d times, want 1", calls)
	}
}
