package hybridsched

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"hybridsched/internal/core"
	"hybridsched/internal/runner"
)

// SweepSpec is one cell of a sweep grid: a workload to replay and a
// simulation configuration to replay it under. The workload is either a
// generator config (Workload) or a source spec (Source — see ParseSource);
// Source takes precedence when both are set. Identical workload configs, and
// identical source specs, share one materialized trace across the whole
// sweep, so replaying one SWF import under every mechanism reads the file
// once. Label tags the cell in progress lines and serialized output.
// Sim.Mechanism and Sim.Policy accept any name the registries resolve,
// including schedulers and policies added with RegisterScheduler/
// RegisterPolicy; Source heads likewise resolve names added with
// RegisterSource.
type SweepSpec struct {
	Label    string
	Source   string
	Workload WorkloadConfig
	Sim      SimulationConfig

	// FaultMTBF, when positive, injects node failures at this system MTBF
	// (seconds) into the cell. FaultMeanRepair is the mean node repair time
	// (0 = instant repair, the legacy shortcut: capacity never shrinks). The
	// failure timeline derives from the workload seed (or the cell
	// coordinates for source-backed cells), so sweeps stay deterministic.
	FaultMTBF       float64
	FaultMeanRepair float64

	// Drains schedules maintenance windows on the cell (see DrainSpec).
	Drains []DrainSpec
}

// ParseDrains parses a comma-separated list of maintenance windows in the
// form "start+duration:nodes", where start and duration are Go duration
// strings: "24h+4h:128" drains 128 nodes for four hours starting at virtual
// hour 24, and "24h+4h:128,72h+30m:64" schedules two windows. An empty
// string yields no windows.
func ParseDrains(s string) ([]DrainSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []DrainSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		timespec, nodespec, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("hybridsched: drain %q: want start+duration:nodes", part)
		}
		startStr, durStr, ok := strings.Cut(timespec, "+")
		if !ok {
			return nil, fmt.Errorf("hybridsched: drain %q: want start+duration:nodes", part)
		}
		start, err := time.ParseDuration(startStr)
		if err != nil {
			return nil, fmt.Errorf("hybridsched: drain %q: bad start: %w", part, err)
		}
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("hybridsched: drain %q: bad duration: %w", part, err)
		}
		nodes, err := strconv.Atoi(nodespec)
		if err != nil {
			return nil, fmt.Errorf("hybridsched: drain %q: bad node count: %w", part, err)
		}
		if start < 0 || dur <= 0 || nodes < 1 {
			return nil, fmt.Errorf("hybridsched: drain %q: start must be >= 0, duration and nodes positive", part)
		}
		out = append(out, DrainSpec{
			Start:    int64(start / time.Second),
			Duration: int64(dur / time.Second),
			Nodes:    nodes,
		})
	}
	return out, nil
}

// SweepResult is the structured outcome of one sweep cell. Err is non-empty
// when the cell failed (including a panic inside the simulator); failures
// are isolated and never abort the rest of the sweep.
type SweepResult struct {
	Spec   SweepSpec
	Report Report
	Err    string
}

// SweepOptions control sweep execution; they affect speed and reporting,
// never results.
type SweepOptions struct {
	// Workers bounds the goroutine pool; <= 0 means runtime.NumCPU().
	Workers int
	// Progress receives one line per completed cell plus a wall-clock
	// summary (nil = quiet).
	Progress io.Writer

	// CheckpointDir, when non-empty, persists per-cell progress into this
	// directory: an engine snapshot every CheckpointEvery events while a cell
	// runs, and the cell's final report when it completes. A sweep killed at
	// any instant can then be rerun with Resume set and emits byte-identical
	// output: finished cells are skipped, interrupted cells continue from
	// their snapshots, and anything torn or stale falls back to a fresh run.
	CheckpointDir string
	// CheckpointEvery is the snapshot interval in simulation events; <= 0
	// takes a default suited to multi-week cells.
	CheckpointEvery int
	// Resume loads completed and in-flight cells from CheckpointDir.
	Resume bool
}

// SweepReport is a completed sweep: one SweepResult per SweepSpec, in grid
// order regardless of worker count or completion order.
type SweepReport struct {
	Results []SweepResult

	sweep runner.Sweep
}

// WriteJSON serializes the sweep as an indented JSON array, one object per
// cell in grid order. Wall-clock measurements are excluded, so output is
// byte-identical across machines and worker counts.
func (r *SweepReport) WriteJSON(w io.Writer) error { return r.sweep.WriteJSON(w) }

// WriteCSV serializes the sweep as CSV, one row per cell in grid order, with
// the same determinism guarantee as WriteJSON.
func (r *SweepReport) WriteCSV(w io.Writer) error { return r.sweep.WriteCSV(w) }

// RunSweep executes every cell of the grid across a bounded worker pool. The
// grid is deterministic: results arrive in grid order and are bit-identical
// for any Workers value. A failing or panicking cell is reported in its
// SweepResult (and in the returned error, which wraps the first failure)
// while the rest of the sweep completes.
func RunSweep(specs []SweepSpec, opt SweepOptions) (*SweepReport, error) {
	rspecs := make([]runner.Spec, len(specs))
	for i, s := range specs {
		cfg := s.Sim.withDefaults()
		ccfg := core.DefaultConfig()
		ccfg.DirectedReturn = !cfg.NoDirectedReturn
		ccfg.BackfillReserved = cfg.BackfillReserved
		if cfg.ReleaseThresholdSeconds != 0 {
			// Negative (the explicit-zero sentinel) passes through untouched:
			// core.Config.withDefaults resolves it, and resolving it here to 0
			// would be re-read downstream as "use the 600 s default".
			ccfg.ReleaseThreshold = cfg.ReleaseThresholdSeconds
		}
		rspecs[i] = runner.Spec{
			Group:     "sweep",
			Variant:   s.Label,
			Mechanism: cfg.Mechanism,
			Policy:    cfg.Policy,
			Nodes:     cfg.Nodes,
			Source:    s.Source,
			Workload:  s.Workload,
			Core:      ccfg,
			MTBF:      cfg.MTBF,
			// Pass the raw multiplier: the runner applies the same default
			// and explicit-zero sentinel rules, and root withDefaults
			// resolving -1 to 0 here would be re-read as "use default".
			CkptFreqMult:     s.Sim.CheckpointFreqMult,
			BackfillReserved: cfg.BackfillReserved,
			Validate:         cfg.Validate,
			FaultMTBF:        s.FaultMTBF,
			FaultMeanRepair:  s.FaultMeanRepair,
			Drains:           s.Drains,
		}
	}
	sweep := runner.Run(rspecs, runner.Options{
		Workers:         opt.Workers,
		Progress:        opt.Progress,
		CheckpointDir:   opt.CheckpointDir,
		CheckpointEvery: opt.CheckpointEvery,
		Resume:          opt.Resume,
	})
	rep := &SweepReport{sweep: sweep, Results: make([]SweepResult, len(sweep.Results))}
	for i, res := range sweep.Results {
		rep.Results[i] = SweepResult{Spec: specs[i], Report: res.Report, Err: res.Err}
	}
	return rep, sweep.Err()
}
