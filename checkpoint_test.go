package hybridsched

import (
	"bytes"
	"encoding/json"
	"testing"
)

// canonReport canonicalizes a report for byte comparison: the wall-clock
// decision-latency fields are the only nondeterministic content.
func canonReport(t *testing.T, r Report) []byte {
	t.Helper()
	r.MeanDecisionMs, r.MaxDecisionMs = 0, 0
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testRecords(t *testing.T) []Record {
	t.Helper()
	records, err := GenerateWorkload(WorkloadConfig{Seed: 7, Nodes: 512, Weeks: 1})
	if err != nil {
		t.Fatal(err)
	}
	return records
}

// checkSessionRoundTrip runs the option set uninterrupted for the reference
// report, then again with a checkpoint taken mid-run, restores the frame into
// a fresh session, and requires both the checkpointed original and the
// restored session to finish with the reference bytes.
func checkSessionRoundTrip(t *testing.T, opts ...Option) {
	t.Helper()
	records := testRecords(t)

	ref, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := ref.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	refRep, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := canonReport(t, refRep)

	s, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntil(3 * 24 * Hour); err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := s.Checkpoint(&frame); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(bytes.NewReader(frame.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gotRep, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := canonReport(t, gotRep); !bytes.Equal(got, want) {
		t.Fatalf("restored session diverges\ngot:  %.300s\nwant: %.300s", got, want)
	}

	// The checkpointed original must finish unperturbed too.
	contRep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := canonReport(t, contRep); !bytes.Equal(got, want) {
		t.Fatalf("checkpointing perturbed the original session\ngot:  %.300s\nwant: %.300s", got, want)
	}
}

func TestSessionCheckpointRestore(t *testing.T) {
	checkSessionRoundTrip(t,
		WithNodes(512),
		WithMechanism("CUA&SPAA"),
	)
}

func TestSessionCheckpointRestoreFaultsAndDrains(t *testing.T) {
	checkSessionRoundTrip(t,
		WithNodes(512),
		WithMechanism("CUP&PAA"),
		WithFaults(FaultConfig{MTBF: 6 * 3600, Seed: 7, Horizon: 5 * 7 * 24 * Hour, MeanRepair: 2 * 3600}),
		WithDrain(2*24*Hour, 2*24*Hour, 32),
		WithDrain(4*24*Hour, 12*Hour, 64),
	)
}

func TestSessionCheckpointRestoreBaselinePolicy(t *testing.T) {
	checkSessionRoundTrip(t,
		WithNodes(512),
		WithMechanism("baseline"),
		WithPolicy("sjf"),
	)
}

func TestCheckpointRejectsCustomScheduler(t *testing.T) {
	s, err := NewSession(WithNodes(64), WithScheduler(Baseline{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Fatal("checkpoint of a WithScheduler session succeeded")
	}
}

func TestCheckpointRejectsUndrainedSources(t *testing.T) {
	records := testRecords(t)
	s, err := NewSession(WithNodes(512), WithSource(FromRecords(records)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Fatal("checkpoint with undrained sources succeeded")
	}
}

func TestCheckpointRejectsCustomRepairTime(t *testing.T) {
	s, err := NewSession(WithNodes(64), WithFaults(FaultConfig{
		MTBF: 3600, Horizon: 24 * Hour, MeanRepair: 600,
		RepairTime: func(u float64) float64 { return 600 },
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Fatal("checkpoint with a custom RepairTime function succeeded")
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	records := testRecords(t)
	s, err := NewSession(WithNodes(512))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntil(24 * Hour); err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := s.Checkpoint(&frame); err != nil {
		t.Fatal(err)
	}
	valid := frame.Bytes()

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-header", valid[:10]},
		{"truncated-payload", valid[:len(valid)/2]},
		{"flipped-magic", flipByte(valid, 0)},
		{"flipped-mid", flipByte(valid, len(valid)/2)},
		{"flipped-crc", flipByte(valid, len(valid)-1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Restore(bytes.NewReader(tc.data)); err == nil {
				t.Fatal("restore of corrupted frame succeeded")
			}
		})
	}

	// The pristine frame must still restore after all that.
	if _, err := Restore(bytes.NewReader(valid)); err != nil {
		t.Fatal(err)
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0x40
	return out
}
