package hybridsched

import (
	"errors"
	"fmt"
	"io"

	"hybridsched/internal/snapshot"
)

// SessionSnapshotVersion is the format version of Session.Checkpoint frames.
// It covers the session envelope (construction recipe + engine blob); the
// embedded engine frame carries its own version.
const SessionSnapshotVersion uint32 = 1

// maxRestoreNodes bounds the system size Restore accepts before building an
// engine: a corrupted or hostile header must not be able to demand a
// multi-terabyte cluster allocation. The largest real machines are four
// orders of magnitude below this.
const maxRestoreNodes = 1 << 24

// Checkpoint serializes the complete session state — configuration recipe,
// every job with its execution state, the cluster partition including failed
// and drained nodes, pending events with their tie-breaking sequence numbers,
// metrics accumulators, and the scheduler's and fault injector's private
// state (including RNG positions) — as one versioned, CRC-checked frame.
// A session restored from the frame with Restore continues the run
// byte-identically: its final Report matches the uninterrupted run's exactly
// (up to the wall-clock decision-latency fields, which measure host time).
//
// Checkpoint never disturbs the run; it can be interleaved with Step/RunUntil
// freely. It fails — writing nothing — for sessions that cannot be rebuilt
// from a frame:
//
//   - sessions built with WithScheduler (register the scheduler by name and
//     select it with WithMechanism instead);
//   - schedulers that do not implement the engine's snapshot extension;
//   - fault configurations with a custom RepairTime function;
//   - sessions whose attached Sources still hold undrawn records (the engine
//     cannot capture jobs it has not seen; drain the sources first or submit
//     records directly).
func (s *Session) Checkpoint(w io.Writer) error {
	if s.ckpt == nil {
		return errors.New("hybridsched: sessions built with WithScheduler cannot be checkpointed; register the scheduler by name and use WithMechanism")
	}
	if !s.sourcesDrained() {
		return errors.New("hybridsched: checkpoint with undrained sources: records they have not yielded yet would be lost on restore")
	}
	if fc := s.ckpt.faults; fc != nil && fc.RepairTime != nil {
		return errors.New("hybridsched: sessions with a custom RepairTime function cannot be checkpointed")
	}
	blob, err := s.eng.Snapshot()
	if err != nil {
		return err
	}
	cfg := s.ckpt.cfg
	var enc snapshot.Enc
	enc.Int(cfg.Nodes)
	enc.String(cfg.Mechanism)
	enc.String(cfg.Policy)
	enc.F64(cfg.MTBF)
	enc.F64(cfg.CheckpointFreqMult)
	enc.Bool(cfg.BackfillReserved)
	enc.Bool(cfg.NoDirectedReturn)
	enc.I64(cfg.ReleaseThresholdSeconds)
	enc.Bool(cfg.Validate)
	enc.I64(s.ckpt.maxSimTime)
	if fc := s.ckpt.faults; fc != nil {
		enc.Bool(true)
		enc.F64(fc.MTBF)
		enc.I64(fc.Seed)
		enc.I64(fc.Horizon)
		enc.F64(fc.MeanRepair)
	} else {
		enc.Bool(false)
	}
	enc.Blob(blob)
	return snapshot.Write(w, SessionSnapshotVersion, enc.Bytes())
}

// Restore rebuilds a session from a Checkpoint frame and resumes it at the
// captured instant. The construction recipe in the frame — system size,
// mechanism, policy, checkpointing and fault parameters — is replayed through
// the ordinary session constructor, so registered scheduler and policy names
// resolve exactly as they did originally (a frame naming a scheduler this
// process has not registered fails). Extra options apply on top and are meant
// for run-orthogonal attachments (observers, event channels, source
// lookahead); options that contradict the captured configuration — a
// different node count, mechanism, or policy — are rejected when the engine
// state is re-linked.
//
// Malformed input — truncation, bit flips, version skew, or a frame whose
// semantics do not hold together — yields an error, never a panic and never a
// half-restored session.
func Restore(r io.Reader, opts ...Option) (*Session, error) {
	payload, version, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	if version != SessionSnapshotVersion {
		return nil, fmt.Errorf("hybridsched: session snapshot version %d, this build reads %d", version, SessionSnapshotVersion)
	}
	d := snapshot.NewDec(payload)
	var cfg SimulationConfig
	cfg.Nodes = d.Int()
	cfg.Mechanism = d.String()
	cfg.Policy = d.String()
	cfg.MTBF = d.F64()
	cfg.CheckpointFreqMult = d.F64()
	cfg.BackfillReserved = d.Bool()
	cfg.NoDirectedReturn = d.Bool()
	cfg.ReleaseThresholdSeconds = d.I64()
	cfg.Validate = d.Bool()
	maxSimTime := d.I64()
	var fc *FaultConfig
	if d.Bool() {
		fc = &FaultConfig{MTBF: d.F64(), Seed: d.I64(), Horizon: d.I64(), MeanRepair: d.F64()}
	}
	blob := d.Blob()
	if err := d.Done(); err != nil {
		return nil, err
	}
	if cfg.Nodes < 1 || cfg.Nodes > maxRestoreNodes {
		return nil, fmt.Errorf("hybridsched: snapshot names an implausible system size %d", cfg.Nodes)
	}
	if cfg.CheckpointFreqMult == 0 {
		// The recipe stores the resolved multiplier, where 0 means defensive
		// checkpointing explicitly off; re-express it as the constructor's
		// explicit-zero sentinel so withDefaults does not turn it into 1.0.
		cfg.CheckpointFreqMult = -1
	}
	base := []Option{WithConfig(cfg), WithMaxSimTime(maxSimTime)}
	if fc != nil {
		base = append(base, WithFaults(*fc))
	}
	s, err := NewSession(append(base, opts...)...)
	if err != nil {
		return nil, fmt.Errorf("hybridsched: restore: %w", err)
	}
	if err := s.eng.LoadSnapshot(blob); err != nil {
		s.Close()
		return nil, fmt.Errorf("hybridsched: restore: %w", err)
	}
	return s, nil
}
